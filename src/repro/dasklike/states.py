"""Task state machines and transition records.

Dask.distributed tracks a task through two coupled state machines — one
on the scheduler, one on the worker that runs it.  The paper's
scheduler/worker plugins "capture crucial details such as the task key,
group, prefix, initial state, final state, timestamp, and the stimuli
that triggered this transition" (§III-E2).  This module defines the
states, the legal transitions, and the :class:`TransitionRecord` that
the instrumentation layer streams to Mofka.

State vocabulary follows Dask.distributed:

Scheduler side
    ``released → waiting → processing → memory → released/forgotten``
    with ``no-worker`` when nothing can accept the task and ``erred``
    on failure.

Worker side
    ``waiting → ready → executing → memory`` with ``fetch → flight``
    for dependencies being gathered from peers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "SCHEDULER_STATES",
    "ACTIVE_SCHEDULER_STATES",
    "TERMINAL_SCHEDULER_STATES",
    "WORKER_STATES",
    "SCHEDULER_TRANSITIONS",
    "TransitionRecord",
    "make_transition_record",
    "validate_transition",
    "key_split",
    "key_group",
    "key_str",
]

SCHEDULER_STATES = (
    "released", "waiting", "no-worker", "processing", "memory", "erred",
    "forgotten",
)

#: States in which a task has neither produced a result nor settled
#: into an error: the population failure handling may still have to
#: act on.  The scheduler keeps an ``_unfinished`` index over exactly
#: these states so the all-workers-lost degradation path is O(pending
#: tasks), not O(every task ever submitted).
ACTIVE_SCHEDULER_STATES = frozenset({
    "released", "waiting", "no-worker", "processing",
})

#: Settled states: the task produced a result, failed for good, or was
#: garbage-collected.  (``memory`` can still transition onward, but
#: never needs failure-time intervention — replica loss re-enters it
#: through an explicit resubmit.)
TERMINAL_SCHEDULER_STATES = frozenset(
    SCHEDULER_STATES) - ACTIVE_SCHEDULER_STATES

WORKER_STATES = (
    "waiting", "fetch", "flight", "ready", "executing", "memory",
    "released", "erred",
)

#: Legal scheduler-side transitions (superset of what we exercise).
SCHEDULER_TRANSITIONS = frozenset([
    ("released", "waiting"),
    ("waiting", "processing"),
    ("waiting", "no-worker"),
    ("no-worker", "processing"),
    ("processing", "memory"),
    ("processing", "erred"),
    ("processing", "released"),
    ("memory", "released"),
    ("memory", "forgotten"),
    ("released", "forgotten"),
    ("erred", "forgotten"),
])


def validate_transition(start: str, finish: str) -> None:
    """Raise ``ValueError`` for a transition Dask's scheduler never makes."""
    if (start, finish) not in SCHEDULER_TRANSITIONS:
        raise ValueError(f"illegal scheduler transition {start!r} -> {finish!r}")


@dataclass(frozen=True)
class TransitionRecord:
    """One captured state transition (the plugins' core event)."""

    key: str
    group: str
    prefix: str
    start_state: str
    finish_state: str
    timestamp: float
    stimulus: str
    #: Worker address for worker-side records; None on the scheduler
    #: until the task is assigned.
    worker: Optional[str] = None
    #: Which machine recorded it: "scheduler" or the worker address.
    source: str = "scheduler"


def make_transition_record(key, group, prefix, start_state, finish_state,
                           timestamp, stimulus, worker,
                           source) -> TransitionRecord:
    """Hot-path :class:`TransitionRecord` constructor.

    A frozen dataclass pays one ``object.__setattr__`` per field in
    ``__init__``; at millions of transitions that is the single largest
    record-keeping cost.  Filling ``__dict__`` directly builds an
    identical instance (same fields, equality, ``asdict`` form) at a
    fraction of the cost — ``tests/dasklike/test_scheduler_units.py``
    pins the equivalence.
    """
    record = object.__new__(TransitionRecord)
    # Replacing ``__dict__`` wholesale must bypass the frozen
    # ``__setattr__`` (which intercepts every attribute, dunders too).
    object.__setattr__(record, "__dict__", {
        "key": key, "group": group, "prefix": prefix,
        "start_state": start_state, "finish_state": finish_state,
        "timestamp": timestamp, "stimulus": stimulus,
        "worker": worker, "source": source,
    })
    return record


# -- key naming conventions (mirrors dask.core / distributed) -------------

def key_str(key) -> str:
    """Canonical string form of a key (tuples render like Dask's)."""
    if isinstance(key, tuple):
        return "(" + ", ".join(repr(k) if isinstance(k, str) else str(k)
                               for k in key) + ")"
    return str(key)


def key_group(key) -> str:
    """Task *group*: the name part shared by siblings of one collection.

    For ``('getitem-24266c', 63)`` the group is ``getitem-24266c``; for a
    plain string key the group is the key itself.  Canonical string
    renderings of tuple keys (``"('getitem-24266c', 63)"``) are parsed
    back, so records that store :func:`key_str` output group correctly.
    """
    if isinstance(key, tuple) and key:
        return str(key[0])
    text = str(key)
    if text.startswith("('") and "'" in text[2:]:
        return text[2:text.index("'", 2)]
    return text


def key_split(key) -> str:
    """Task *prefix*: the human-readable operation name.

    Mirrors ``dask.utils.key_split``: strips the trailing hash token from
    the group, e.g. ``'read_parquet-fused-assign-a1b2c3'`` →
    ``'read_parquet-fused-assign'`` and ``('getitem-24266c', 63)`` →
    ``'getitem'``.
    """
    group = key_group(key)
    words = group.split("-")
    # Drop trailing tokens that look like hex hashes or numbers.
    while len(words) > 1 and _is_token(words[-1]):
        words.pop()
    return "-".join(words)


def _is_token(word: str) -> bool:
    if not word:
        return True
    if word.isdigit():
        return True
    # Hash tokens: hex strings of length >= 6 (tokenize() emits 8 hex
    # chars; real operation names are never pure hex of that length).
    if len(word) >= 6 and all(c in "0123456789abcdef" for c in word):
        return True
    return False
