"""A Dask.distributed-like task-based WMS on the simulation kernel.

This package is the workflow-management-system substrate of the
reproduction: client/scheduler/worker state machines, dynamic
locality-aware scheduling, work stealing, inter-worker data transfers,
per-task worker threads with stable pthread IDs, a Tornado-like event
loop with GC-induced unresponsiveness warnings, and task-graph fusion.

It exposes the observation points the paper instruments — scheduler and
worker plugins receive every state transition, communication, and task
completion — without the instrumentation itself, which lives in
:mod:`repro.instrument`.
"""

from .array import BlockedArray, imread
from .client import Client
from .dataframe import PartitionedFrame, read_parquet
from .delayed import Delayed, collect, delayed
from .config import DaskConfig
from .deploy import DaskCluster
from .records import (
    CommRecord,
    LogEntry,
    SpillRecord,
    StealEvent,
    TaskRun,
    WarningRecord,
)
from .scheduler import Scheduler, SchedulerTaskState
from .states import (
    SCHEDULER_STATES,
    WORKER_STATES,
    TransitionRecord,
    key_group,
    key_split,
    key_str,
)
from .stealing import WorkStealing
from .taskgraph import GraphError, IOOp, TaskGraph, TaskSpec, fuse_linear_chains
from .worker import PassthroughIO, Worker

__all__ = [
    "BlockedArray",
    "Client",
    "Delayed",
    "PartitionedFrame",
    "collect",
    "delayed",
    "imread",
    "read_parquet",
    "CommRecord",
    "DaskCluster",
    "DaskConfig",
    "GraphError",
    "IOOp",
    "LogEntry",
    "PassthroughIO",
    "SCHEDULER_STATES",
    "Scheduler",
    "SchedulerTaskState",
    "SpillRecord",
    "StealEvent",
    "TaskGraph",
    "TaskRun",
    "TaskSpec",
    "TransitionRecord",
    "WORKER_STATES",
    "WarningRecord",
    "WorkStealing",
    "Worker",
    "fuse_linear_chains",
    "key_group",
    "key_split",
    "key_str",
]
