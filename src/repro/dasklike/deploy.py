"""Deployment helper: stand up a Dask-like cluster on a job allocation.

Mirrors the paper's launch flow (§III-E): "after acquiring the
requested resources, the client and workers connect to the scheduler".
Given a :class:`~repro.jobs.Job`, this builds the scheduler on the
first allocated node and ``workers_per_node`` workers on each remaining
node, wires the work-stealing balancer, and returns a ready
:class:`DaskCluster`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..jobs import Job
from ..platform import Cluster
from ..sim import Environment, RandomStreams
from .client import Client
from .config import DaskConfig
from .scheduler import Scheduler
from .stealing import WorkStealing
from .worker import PassthroughIO, Worker

__all__ = ["DaskCluster"]


class DaskCluster:
    """A scheduler plus its workers, deployed on a job's nodes."""

    def __init__(self, env: Environment, cluster: Cluster, job: Job,
                 config: Optional[DaskConfig] = None,
                 streams: Optional[RandomStreams] = None,
                 io_layer_factory: Optional[Callable] = None):
        self.env = env
        self.cluster = cluster
        self.job = job
        self.config = config or DaskConfig()
        self.streams = streams or cluster.streams
        #: Builds the (possibly Darshan-instrumented) I/O layer for one
        #: worker; receives the worker index and must return an object
        #: with the ``io(path, op, offset, length, thread_id)`` contract.
        factory = io_layer_factory or (
            lambda index: PassthroughIO(cluster.pfs)
        )

        self.scheduler = Scheduler(
            env, job.scheduler_node, self.config, self.streams
        )
        self.workers: list[Worker] = []
        index = 0
        for node in job.worker_nodes:
            for _ in range(job.spec.workers_per_node):
                worker = Worker(
                    env=env, index=index, node=node, config=self.config,
                    streams=self.streams, network=cluster.network,
                    io_layer=factory(index),
                    nthreads=job.spec.threads_per_worker,
                )
                self.scheduler.add_worker(worker)
                self.workers.append(worker)
                index += 1
        self.stealing = WorkStealing(self.scheduler)
        self._started = False

    def start(self, monitor_liveness: bool = False) -> None:
        """Launch worker background processes and the balancer.

        ``monitor_liveness=True`` also starts the scheduler's
        heartbeat-based failure detector (off by default: the evaluation
        workflows run on healthy allocations, and the detector is a
        perpetual process callers must stop).
        """
        if self._started:
            return
        self._started = True
        for worker in self.workers:
            worker.start()
        self.stealing.start()
        if monitor_liveness:
            self.scheduler.start_liveness_monitor()
        self.cluster.pfs.start_interference()

    def close(self) -> None:
        for worker in self.workers:
            worker.close()
        self.stealing.stop()

    def client(self, name: str = "client") -> Client:
        return Client(self.env, self.scheduler, self.config, name=name)

    # -- aggregation across workers (used by the instrumentation) --------
    def all_task_runs(self):
        return [run for w in self.workers for run in w.task_runs]

    def all_comms(self):
        return [c for w in self.workers for c in w.comms]

    def all_warnings(self):
        return [w for worker in self.workers for w in worker.warnings]

    def all_logs(self):
        logs = list(self.scheduler.logs)
        for worker in self.workers:
            logs.extend(worker.logs)
        return sorted(logs, key=lambda entry: entry.time)

    def all_transitions(self):
        records = list(self.scheduler.transitions)
        for worker in self.workers:
            records.extend(worker.transitions)
        return sorted(records, key=lambda r: r.timestamp)
