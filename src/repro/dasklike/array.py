"""``dask.array`` / ``dask_image``-style blocked-array collection.

The ImageProcessing workflow of the paper uses "only Dask APIs
(dask.array and dask.image) ... they provide a high-level API and
create the corresponding Dask task graph under the hood" (§IV-B).
This module is that graph factory for the cost-model world: a
:class:`BlockedArray` is a list of lazily defined blocks; operations
append per-block :class:`TaskSpec` nodes, and :meth:`BlockedArray.graph`
snapshots the pending stage into a submittable graph.

The I/O shape matters to Fig. 4: ``imread`` issues several fixed-size
read operations per image ("10-25 read operations of 4 MB each are
performed per image", §IV-D1), which this builder reproduces.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .taskgraph import IOOp, TaskGraph, TaskSpec
from .utils import tokenize

__all__ = ["BlockedArray", "imread"]


class BlockedArray:
    """A lazy, blocked, 1-D collection of equal-role blocks.

    ``pending`` holds the TaskSpecs of every not-yet-submitted stage in
    this array's lineage; blocks already materialised by an earlier
    ``compute`` appear only as external dependency keys.
    """

    def __init__(self, name: str, block_keys: list, block_nbytes: list,
                 pending: dict[str, TaskSpec]):
        if len(block_keys) != len(block_nbytes):
            raise ValueError("block_keys and block_nbytes length mismatch")
        self.name = name
        self.block_keys = list(block_keys)
        self.block_nbytes = list(block_nbytes)
        self.pending = dict(pending)

    @property
    def nblocks(self) -> int:
        return len(self.block_keys)

    @property
    def nbytes(self) -> int:
        return sum(self.block_nbytes)

    # ------------------------------------------------------------------
    # stage materialisation
    # ------------------------------------------------------------------
    def graph(self, name: Optional[str] = None) -> TaskGraph:
        """Snapshot every pending task into one submittable graph."""
        graph = TaskGraph(self.pending.values(), name=name or self.name)
        graph.validate(allow_external=True)
        return graph

    def mark_computed(self) -> None:
        """Declare the pending stage submitted; blocks become external."""
        self.pending = {}

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def map_blocks(self, name: str, compute_time_per_block: float,
                   output_ratio: float = 1.0) -> "BlockedArray":
        """Elementwise stage: one task per block, no halo."""
        token = tokenize(self.name, name, compute_time_per_block,
                         output_ratio)
        pending = dict(self.pending)
        keys, sizes = [], []
        for i, (dep, nbytes) in enumerate(
            zip(self.block_keys, self.block_nbytes)
        ):
            out = max(1, int(nbytes * output_ratio))
            spec = TaskSpec(
                key=(f"{name}-{token}", i),
                deps=(dep,),
                compute_time=compute_time_per_block,
                output_nbytes=out,
            )
            pending[spec.name] = spec
            keys.append(spec.key)
            sizes.append(out)
        return BlockedArray(name, keys, sizes, pending)

    def map_overlap(self, name: str, compute_time_per_block: float,
                    depth: int = 1,
                    output_ratio: float = 1.0) -> "BlockedArray":
        """Stencil stage: each task also consumes ``depth`` neighbours.

        This is how a Gaussian filter over chunked images builds its
        graph — halo exchange shows up as extra dependency edges, hence
        extra inter-worker communications when neighbours live apart.
        """
        token = tokenize(self.name, name, compute_time_per_block, depth,
                         output_ratio)
        pending = dict(self.pending)
        keys, sizes = [], []
        n = self.nblocks
        for i in range(n):
            lo = max(0, i - depth)
            hi = min(n, i + depth + 1)
            deps = tuple(self.block_keys[j] for j in range(lo, hi))
            out = max(1, int(self.block_nbytes[i] * output_ratio))
            spec = TaskSpec(
                key=(f"{name}-{token}", i),
                deps=deps,
                compute_time=compute_time_per_block,
                output_nbytes=out,
            )
            pending[spec.name] = spec
            keys.append(spec.key)
            sizes.append(out)
        return BlockedArray(name, keys, sizes, pending)

    def split_blocks(self, name: str, parts: int,
                     compute_time_per_part: float = 0.5e-3) -> "BlockedArray":
        """Rechunk: split every block into ``parts`` equal sub-blocks.

        This is how a per-file ``imread`` block becomes the per-chunk
        parallelism the pipeline stages operate on.
        """
        if parts < 1:
            raise ValueError("parts must be >= 1")
        token = tokenize(self.name, name, parts)
        pending = dict(self.pending)
        keys, sizes = [], []
        index = 0
        for dep, nbytes in zip(self.block_keys, self.block_nbytes):
            part_bytes = max(1, nbytes // parts)
            for p in range(parts):
                out = part_bytes if p < parts - 1 \
                    else nbytes - part_bytes * (parts - 1)
                spec = TaskSpec(
                    key=(f"{name}-{token}", index),
                    deps=(dep,),
                    compute_time=compute_time_per_part,
                    output_nbytes=max(1, out),
                )
                pending[spec.name] = spec
                keys.append(spec.key)
                sizes.append(max(1, out))
                index += 1
        return BlockedArray(name, keys, sizes, pending)

    def combine_blocks(self, name: str, group: int,
                       compute_time_per_input: float = 0.5e-3,
                       output_ratio: float = 1.0) -> "BlockedArray":
        """Merge each run of ``group`` consecutive blocks into one."""
        if group < 1:
            raise ValueError("group must be >= 1")
        token = tokenize(self.name, name, group, output_ratio)
        pending = dict(self.pending)
        keys, sizes = [], []
        for index, start in enumerate(range(0, self.nblocks, group)):
            deps = tuple(self.block_keys[start:start + group])
            total = sum(self.block_nbytes[start:start + group])
            out = max(1, int(total * output_ratio))
            spec = TaskSpec(
                key=(f"{name}-{token}", index),
                deps=deps,
                compute_time=compute_time_per_input * len(deps),
                output_nbytes=out,
            )
            pending[spec.name] = spec
            keys.append(spec.key)
            sizes.append(out)
        return BlockedArray(name, keys, sizes, pending)

    def save(self, name: str, paths: Sequence[str],
             nbytes_per_block: Optional[Sequence[int]] = None,
             write_op_nbytes: int = 4 * 2**20,
             compute_time_per_block: float = 0.0,
             offsets: Optional[Sequence[int]] = None) -> "BlockedArray":
        """Write stage: one task per block writing its (possibly reduced)
        output in ``write_op_nbytes`` slices.

        ``paths`` may repeat with distinct ``offsets`` to model blocks
        landing in one consolidated store (zarr-style), which is how
        dask.array writes whole collections into a single file.
        """
        if len(paths) != self.nblocks:
            raise ValueError("need one output path per block")
        sizes = list(nbytes_per_block) if nbytes_per_block is not None \
            else list(self.block_nbytes)
        if offsets is not None and len(offsets) != self.nblocks:
            raise ValueError("need one offset per block")
        token = tokenize(self.name, name, write_op_nbytes, tuple(paths))
        pending = dict(self.pending)
        keys, out_sizes = [], []
        for i, (dep, path, nbytes) in enumerate(
            zip(self.block_keys, paths, sizes)
        ):
            writes = []
            offset = offsets[i] if offsets is not None else 0
            remaining = nbytes
            while remaining > 0:
                chunk = min(write_op_nbytes, remaining)
                writes.append(IOOp(path, "write", offset, chunk))
                offset += chunk
                remaining -= chunk
            spec = TaskSpec(
                key=(f"{name}-{token}", i),
                deps=(dep,),
                compute_time=compute_time_per_block,
                writes=tuple(writes),
                output_nbytes=64,  # a tiny "written OK" marker
            )
            pending[spec.name] = spec
            keys.append(spec.key)
            out_sizes.append(64)
        return BlockedArray(name, keys, out_sizes, pending)

    def tree_reduce(self, name: str, fanin: int = 4,
                    compute_time_per_input: float = 1e-3,
                    output_nbytes: int = 256) -> "BlockedArray":
        """Tree reduction down to a single block (fan-in ``fanin``)."""
        token = tokenize(self.name, name, fanin, output_nbytes)
        pending = dict(self.pending)
        level_keys = list(self.block_keys)
        level_sizes = list(self.block_nbytes)
        level = 0
        while len(level_keys) > 1:
            next_keys, next_sizes = [], []
            for i in range(0, len(level_keys), fanin):
                group = level_keys[i:i + fanin]
                spec = TaskSpec(
                    key=(f"{name}-{token}", level, i // fanin),
                    deps=tuple(group),
                    compute_time=compute_time_per_input * len(group),
                    output_nbytes=output_nbytes,
                )
                pending[spec.name] = spec
                next_keys.append(spec.key)
                next_sizes.append(output_nbytes)
            level_keys, level_sizes = next_keys, next_sizes
            level += 1
        return BlockedArray(name, level_keys, level_sizes, pending)


def imread(paths: Sequence[str], image_nbytes: Sequence[int],
           read_op_nbytes: int = 4 * 2**20,
           name: str = "imread",
           offsets: Optional[Sequence[int]] = None) -> BlockedArray:
    """Load images, one block per file, in fixed-size read operations.

    Reproduces the ``dask_image.imread`` access pattern the paper
    observes: an 80 MB image is consumed as ~20 sequential 4 MB reads
    issued by the same task (and hence the same worker thread).

    ``paths`` may repeat with per-image ``offsets`` when the images
    live inside one consolidated store file.
    """
    if len(paths) != len(image_nbytes):
        raise ValueError("need one size per path")
    if offsets is not None and len(offsets) != len(paths):
        raise ValueError("need one offset per path")
    token = tokenize(name, tuple(paths), read_op_nbytes)
    pending: dict[str, TaskSpec] = {}
    keys, sizes = [], []
    for i, (path, nbytes) in enumerate(zip(paths, image_nbytes)):
        reads = []
        offset = offsets[i] if offsets is not None else 0
        remaining = nbytes
        while remaining > 0:
            chunk = min(read_op_nbytes, remaining)
            reads.append(IOOp(path, "read", offset, chunk))
            offset += chunk
            remaining -= chunk
        spec = TaskSpec(
            key=(f"{name}-{token}", i),
            deps=(),
            compute_time=0.4e-3 * max(1, len(reads)),
            reads=tuple(reads),
            output_nbytes=nbytes,
        )
        pending[spec.name] = spec
        keys.append(spec.key)
        sizes.append(nbytes)
    return BlockedArray(name, keys, sizes, pending)
