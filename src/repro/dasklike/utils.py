"""Small shared utilities for the WMS layer."""

from __future__ import annotations

import hashlib

__all__ = ["tokenize", "format_bytes"]


def tokenize(*parts: object) -> str:
    """Deterministic 8-hex-digit token, like ``dask.base.tokenize``.

    Keys built from the same logical inputs get the same token in every
    run, which keeps task identities stable across repetitions — a
    prerequisite for the paper's cross-run scheduling comparisons.
    """
    digest = hashlib.blake2b(
        "\x1f".join(str(p) for p in parts).encode("utf-8"), digest_size=4
    ).hexdigest()
    return digest


def format_bytes(n: float) -> str:
    """Human-readable byte count (``1.50 GiB`` style)."""
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    raise AssertionError("unreachable")
