"""Client model: graph submission and result gathering.

The client is "responsible for creating and submitting tasks to a
runtime scheduler" (§III-A).  Workflows drive the simulation through
this class: they build :class:`~repro.dasklike.taskgraph.TaskGraph`
objects (directly or through the collection helpers) and call
:meth:`Client.compute` once per graph — the paper's per-workflow
"task graphs" count in Table I is exactly the number of such calls.

``compute`` is a simulation process: it pays a submission cost
proportional to graph size (building/serialising the graph is real
coordination overhead, which the paper notes dominates short workflows
in Fig. 3), registers the graph with the scheduler, waits for the
wanted keys to reach distributed memory, and then releases its futures.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Environment
from .config import DaskConfig
from .records import LogEntry
from .scheduler import Scheduler
from .taskgraph import TaskGraph, fuse_linear_chains

__all__ = ["Client"]

#: Seconds of client-side work per task to build/serialise a graph.
GRAPH_BUILD_COST_PER_TASK = 1.5e-3
#: Fixed cost per submission round trip.
SUBMIT_OVERHEAD = 0.05


class Client:
    """A ``distributed.Client`` stand-in driving the simulated cluster."""

    def __init__(self, env: Environment, scheduler: Scheduler,
                 config: Optional[DaskConfig] = None, name: str = "client"):
        self.env = env
        self.scheduler = scheduler
        self.config = config or scheduler.config
        self.name = name
        self.logs: list[LogEntry] = []
        self.connected_at = env.now
        self.graph_indices: list[int] = []
        self.log("INFO", f"Connecting to scheduler at "
                         f"tcp://{scheduler.address}")

    def log(self, level: str, message: str) -> None:
        self.logs.append(LogEntry(
            source=self.name, time=self.env.now, level=level,
            message=message,
        ))

    # ------------------------------------------------------------------
    def connect(self):
        """Process: client/worker startup handshake (coordination time)."""
        # Connecting, waiting for the scheduler to confirm workers.
        yield self.env.timeout(self.config.control_latency * 4)
        self.log("INFO", f"Connected; {len(self.scheduler.workers)} workers")

    def persist(self, graph: TaskGraph, optimize: bool = True,
                wanted: Optional[list[str]] = None):
        """Process: submit one graph and wait for its outputs, keeping
        them pinned in distributed memory (like ``Client.persist``).

        Returns ``(graph_index, results)``; the caller must eventually
        :meth:`release` the wanted keys (or chain further graphs onto
        them first, as the XGBoost boosting rounds do).
        """
        if optimize:
            graph = fuse_linear_chains(graph)
        build = SUBMIT_OVERHEAD + GRAPH_BUILD_COST_PER_TASK * len(graph)
        yield self.env.timeout(build)

        wanted = list(wanted) if wanted is not None else graph.leaves()
        graph_index = self.scheduler.update_graph(graph, wanted=wanted)
        self.graph_indices.append(graph_index)
        self.log("INFO", f"Submitted graph {graph_index} "
                         f"({len(graph)} tasks)")

        events = [self.scheduler.wanted_event(name) for name in wanted]
        if events:
            yield self.env.all_of(events)
        yield self.env.timeout(self.config.control_latency * 2)
        results = {
            name: self.scheduler.tasks[name].nbytes for name in wanted
        }
        return graph_index, results

    def release(self, keys: list[str]) -> None:
        """Drop the client's hold on persisted keys (futures released)."""
        self.scheduler.release_wanted(list(keys))

    def compute(self, graph: TaskGraph, optimize: bool = True,
                wanted: Optional[list[str]] = None):
        """Process: submit one graph and block until its outputs exist.

        Returns ``(graph_index, results)`` where ``results`` maps the
        wanted keys to their output sizes (our stand-in for values).
        Unlike :meth:`persist`, the keys are released after gathering.
        """
        graph_index, results = yield self.env.process(
            self.persist(graph, optimize=optimize, wanted=wanted)
        )
        self.release(list(results))
        self.log("INFO", f"Gathered {len(results)} results of graph "
                         f"{graph_index}")
        return graph_index, results

    def close(self) -> None:
        self.log("INFO", "Client closed")
