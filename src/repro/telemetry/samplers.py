"""Periodic state sampling driven from the engine's monitor hooks.

:class:`PeriodicSampler` implements the :class:`~repro.sim.Environment`
monitor protocol (``on_schedule``/``on_step``/``before_callback``) and
fires its probes whenever the simulation clock crosses an interval
boundary.  Crucially it schedules **no events of its own**: sampling
piggybacks on event pops, so an instrumented run pops exactly the same
event sequence as an uninstrumented one — recorded provenance streams
stay byte-identical with telemetry on or off (the zero-perturbation
property the overhead tests assert).

:func:`install_run_probes` registers the standard probe set for one
:class:`~repro.instrument.recorder.InstrumentedRun`: scheduler
occupancy and task-state depths, worker memory/spill/queue state,
Mofka producer buffers and broker partition backlog, PFS OST queues
and interference, NIC utilization, and live Darshan record counts.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

__all__ = ["PeriodicSampler", "install_run_probes"]


class PeriodicSampler:
    """Engine monitor sampling all probes every ``interval`` sim-seconds."""

    def __init__(self, registry: MetricsRegistry, interval: float = 0.5,
                 start: float = 0.0):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.registry = registry
        self.interval = float(interval)
        self._next = float(start) + self.interval
        self._probes: list = []
        self._env = None
        self.n_ticks = 0

    # ------------------------------------------------------------------
    def add_probe(self, probe) -> "PeriodicSampler":
        """Register ``probe(now)``, called once per sampling tick."""
        self._probes.append(probe)
        return self

    def attach(self, env) -> "PeriodicSampler":
        env.add_monitor(self)
        self._env = env
        return self

    def detach(self) -> None:
        if self._env is not None:
            self._env.remove_monitor(self)
            self._env = None

    # -- engine monitor protocol ----------------------------------------
    def on_schedule(self, event, when, priority, seq, now) -> None:
        pass

    def before_callback(self, event, callback) -> None:
        pass

    def on_step(self, event, when, priority, seq) -> None:
        while when >= self._next:
            tick = self._next
            for probe in self._probes:
                probe(tick)
            self.registry.sample(tick)
            self.n_ticks += 1
            self._next += self.interval


# ---------------------------------------------------------------------------
# standard probes
# ---------------------------------------------------------------------------

def scheduler_probe(registry: MetricsRegistry, scheduler):
    occupancy = registry.gauge(
        "scheduler.occupancy", "estimated queued seconds per worker")
    states = registry.gauge(
        "scheduler.task_states", "tasks currently in each state")
    n_workers = registry.gauge(
        "scheduler.workers", "registered workers")

    def probe(now: float) -> None:
        for address in sorted(scheduler.occupancy):
            occupancy.set(scheduler.occupancy[address], worker=address)
        counts: dict[str, int] = {}
        for ts in scheduler.tasks.values():
            counts[ts.state] = counts.get(ts.state, 0) + 1
        for state in sorted(counts):
            states.set(counts[state], state=state)
        n_workers.set(len(scheduler.workers))

    return probe


def worker_probe(registry: MetricsRegistry, workers):
    managed = registry.gauge(
        "worker.managed_bytes", "bytes of task results held in memory")
    spilled = registry.gauge(
        "worker.spilled_bytes", "bytes evicted to node-local scratch")
    executing = registry.gauge(
        "worker.executing", "tasks currently on a thread")
    ready = registry.gauge(
        "worker.ready", "tasks queued for a thread")

    def probe(now: float) -> None:
        for worker in workers:
            addr = worker.address
            managed.set(worker.managed_bytes, worker=addr)
            spill_total = 0
            for key in sorted(worker.spilled):
                spill_total += worker.spilled[key]
            spilled.set(spill_total, worker=addr)
            executing.set(len(worker.executing), worker=addr)
            ready.set(len(worker.ready), worker=addr)

    return probe


def mofka_probe(registry: MetricsRegistry, service, producers=()):
    backlog = registry.gauge(
        "mofka.partition_events", "events stored per broker partition")
    buffered = registry.gauge(
        "mofka.producer_buffer", "events waiting in a producer's batch")
    ingested = registry.gauge(
        "mofka.broker_events", "events ingested by the broker")

    producers = list(producers)

    def probe(now: float) -> None:
        depths = service.partition_depths()
        for topic in sorted(depths):
            for index, depth in enumerate(depths[topic]):
                backlog.set(depth, topic=topic, partition=index)
        for producer in producers:
            buffered.set(producer.buffer_depth, producer=producer.name)
        ingested.set(service.n_events)

    return probe


def pfs_probe(registry: MetricsRegistry, pfs):
    queued = registry.gauge(
        "pfs.ost_queue", "requests waiting for an OST service slot")
    busy = registry.gauge(
        "pfs.ost_busy", "OST service slots in use")
    interference = registry.gauge(
        "pfs.ost_interference", "external-load slowdown factor per OST")

    def probe(now: float) -> None:
        for index, depth in enumerate(pfs.ost_queue_depths()):
            queued.set(depth, ost=index)
        for index, count in enumerate(pfs.ost_busy()):
            busy.set(count, ost=index)
        for index, level in enumerate(pfs.interference_levels()):
            interference.set(level, ost=index)

    return probe


def network_probe(registry: MetricsRegistry, network):
    send_busy = registry.gauge(
        "net.nic_send_busy", "outbound DMA channels in use per node")
    send_queued = registry.gauge(
        "net.nic_send_queued", "transfers waiting for an outbound channel")
    recv_busy = registry.gauge(
        "net.nic_recv_busy", "inbound DMA channels in use per node")
    recv_queued = registry.gauge(
        "net.nic_recv_queued", "transfers waiting for an inbound channel")

    def probe(now: float) -> None:
        utilization = network.nic_utilization()
        for node in sorted(utilization):
            stats = utilization[node]
            send_busy.set(stats["send_busy"], node=node)
            send_queued.set(stats["send_queued"], node=node)
            recv_busy.set(stats["recv_busy"], node=node)
            recv_queued.set(stats["recv_queued"], node=node)

    return probe


def darshan_probe(registry: MetricsRegistry, runtimes):
    records = registry.gauge(
        "darshan.posix_records", "per-file POSIX records captured so far")
    segments = registry.gauge(
        "darshan.dxt_segments", "DXT trace segments buffered so far")

    def probe(now: float) -> None:
        for runtime in runtimes:
            stats = runtime.live_stats()
            records.set(stats["posix_records"], rank=runtime.rank)
            segments.set(stats["dxt_segments"], rank=runtime.rank)

    return probe


def install_run_probes(sampler: PeriodicSampler, run) -> PeriodicSampler:
    """Register the standard probe set for one ``InstrumentedRun``."""
    registry = sampler.registry
    sampler.add_probe(scheduler_probe(registry, run.dask.scheduler))
    sampler.add_probe(worker_probe(registry, run.dask.workers))
    sampler.add_probe(mofka_probe(registry, run.mofka, run.producers))
    sampler.add_probe(pfs_probe(registry, run.cluster.pfs))
    sampler.add_probe(network_probe(registry, run.cluster.network))
    sampler.add_probe(darshan_probe(registry, run.darshan_runtimes))
    return sampler
