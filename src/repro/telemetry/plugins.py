"""WMS plugins turning lifecycle observations into spans and metrics.

These subclasses of the instrumentation hook surface
(:class:`~repro.instrument.plugins.BasePlugin`) ride alongside the
Mofka plugins on the same scheduler/worker hook points — the telemetry
layer sees exactly what the provenance layer sees, so every task span
carries the *same* task key, pthread ID, and hostname that appear in
the PERFRECUP provenance views.  Joining a Chrome trace row to its
provenance record is a key lookup, not a heuristic.
"""

from __future__ import annotations

from ..dasklike.records import (
    CommRecord,
    SpillRecord,
    StealEvent,
    TaskRun,
    WarningRecord,
)
from ..dasklike.states import TransitionRecord
from ..instrument.plugins import BasePlugin
from .metrics import MetricsRegistry
from .spans import SpanTracer

__all__ = ["TelemetrySchedulerPlugin", "TelemetryWorkerPlugin"]


class TelemetrySchedulerPlugin(BasePlugin):
    """Counts scheduler-side lifecycle activity."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._transitions = registry.counter(
            "scheduler.transitions", "state transitions by finish state")
        self._steals = registry.counter(
            "scheduler.steals", "work-stealing decisions")
        self._tasks_added = registry.counter(
            "scheduler.tasks_added", "tasks inserted into the graph")

    def attach(self, scheduler) -> None:
        scheduler.plugins.append(self)

    def transition(self, record: TransitionRecord) -> None:
        self._transitions.inc(finish=record.finish_state)

    def steal(self, record: StealEvent) -> None:
        self._steals.inc()

    def task_added(self, *, key: str, group: str, prefix: str,
                   deps: list, graph_index: int, timestamp: float) -> None:
        self._tasks_added.inc(prefix=prefix)


class TelemetryWorkerPlugin(BasePlugin):
    """Builds task/communication spans and worker-side metrics."""

    def __init__(self, registry: MetricsRegistry, tracer: SpanTracer,
                 worker_address: str):
        self.registry = registry
        self.tracer = tracer
        self.worker_address = worker_address
        self._tasks = registry.counter(
            "worker.tasks_completed", "task executions finished")
        self._task_seconds = registry.histogram(
            "task.duration", "task execution durations by prefix")
        self._comm_bytes = registry.counter(
            "worker.comm_bytes", "dependency bytes received")
        self._warnings = registry.counter(
            "worker.warnings", "runtime health warnings by kind")
        self._spill_bytes = registry.counter(
            "worker.spill_bytes", "bytes moved to/from scratch")

    def attach(self, worker) -> None:
        worker.plugins.append(self)

    # -- hooks -----------------------------------------------------------
    def task_finished(self, record: TaskRun) -> None:
        # pid/tid/key are the paper's shared identifiers: the same
        # triple appears in the task_run provenance event, so trace and
        # provenance join exactly.
        self.tracer.add_complete(
            name=record.prefix, cat="task",
            start=record.start, stop=record.stop,
            pid=record.hostname, tid=record.thread_id,
            args={
                "key": record.key,
                "group": record.group,
                "worker": record.worker,
                "graph_index": record.graph_index,
                "compute_time": record.compute_time,
                "io_time": record.io_time,
                "output_nbytes": record.output_nbytes,
            },
        )
        self._tasks.inc(worker=record.worker)
        self._task_seconds.observe(record.duration, prefix=record.prefix)

    def communication(self, record: CommRecord) -> None:
        self.tracer.add_complete(
            name="transfer", cat="comm",
            start=record.start, stop=record.stop,
            pid=record.dst_host, tid=0,
            args={
                "key": record.key,
                "src": record.src_worker,
                "dst": record.dst_worker,
                "nbytes": record.nbytes,
                "same_node": record.same_node,
                "same_switch": record.same_switch,
            },
        )
        locality = "same_node" if record.same_node else (
            "same_switch" if record.same_switch else "cross_switch")
        self._comm_bytes.inc(record.nbytes, locality=locality)

    def warning(self, record: WarningRecord) -> None:
        self._warnings.inc(kind=record.kind, worker=record.source)

    def spill_moved(self, record: SpillRecord) -> None:
        self._spill_bytes.inc(record.nbytes, direction=record.direction,
                              worker=record.worker)
