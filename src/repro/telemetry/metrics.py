"""Labelled metrics: counters, gauges, histograms, and their registry.

The paper's characterization joins *sampled* platform state (queue
depths, memory pressure, broker backlog) with *event* provenance; this
module provides the sampled half.  A :class:`MetricsRegistry` hands out
get-or-create metric instruments keyed by name; every instrument keeps
one current value (or distribution) per *labelset*, and
:meth:`MetricsRegistry.sample` appends a timestamped row per labelset
to the registry's time series.

Determinism: labelsets are canonicalized to sorted ``(key, value)``
tuples, and every dump iterates metrics and labelsets in sorted order,
so two runs with identical observations produce byte-identical tables
regardless of insertion order or ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: Latency-oriented default bucket upper bounds (seconds).
DEFAULT_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
                   5.0, float("inf"))


def _labels_key(labels: dict) -> tuple:
    """Canonical, hash-order-independent form of a labelset."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_text(key: tuple) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


class _Metric:
    """Shared name/help plumbing; subclasses define the value model."""

    kind = "?"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def labelsets(self) -> list[tuple]:
        """All labelsets observed so far, in sorted order."""
        return sorted(self._series)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"{len(self._series)} labelset(s)>")


class Counter(_Metric):
    """Monotonically increasing count per labelset."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(amount={amount})")
        key = _labels_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_labels_key(labels), 0.0)

    def sample_rows(self, now: float) -> Iterable[dict]:
        for key in sorted(self._series):
            yield {"time": now, "metric": self.name, "kind": self.kind,
                   "labels": _labels_text(key), "value": self._series[key]}


class Gauge(_Metric):
    """Point-in-time value per labelset (can go up and down)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        self._series[_labels_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _labels_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._series.get(_labels_key(labels), 0.0)

    def sample_rows(self, now: float) -> Iterable[dict]:
        for key in sorted(self._series):
            yield {"time": now, "metric": self.name, "kind": self.kind,
                   "labels": _labels_text(key), "value": self._series[key]}


class Histogram(_Metric):
    """Bucketed distribution per labelset (cumulative-bucket model)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple = DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(buckets))
        if not bounds or bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.buckets = bounds
        #: labelset -> [per-bucket counts..., total, sum]
        self._series: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        key = _labels_key(labels)
        state = self._series.get(key)
        if state is None:
            state = [0] * len(self.buckets) + [0, 0.0]
            self._series[key] = state
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                state[i] += 1
                break
        state[-2] += 1
        state[-1] += value

    def count(self, **labels) -> int:
        state = self._series.get(_labels_key(labels))
        return state[-2] if state else 0

    def total(self, **labels) -> float:
        state = self._series.get(_labels_key(labels))
        return state[-1] if state else 0.0

    def bucket_counts(self, **labels) -> list[int]:
        state = self._series.get(_labels_key(labels))
        return list(state[:len(self.buckets)]) if state else \
            [0] * len(self.buckets)

    def sample_rows(self, now: float) -> Iterable[dict]:
        for key in sorted(self._series):
            state = self._series[key]
            text = _labels_text(key)
            yield {"time": now, "metric": f"{self.name}.count",
                   "kind": self.kind, "labels": text,
                   "value": float(state[-2])}
            yield {"time": now, "metric": f"{self.name}.sum",
                   "kind": self.kind, "labels": text, "value": state[-1]}


class MetricsRegistry:
    """Get-or-create home of every instrument plus the sampled series."""

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}
        self._rows: list[dict] = []
        self.n_samples = 0

    # -- instrument factories -------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"cannot re-register as {cls.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- time series -----------------------------------------------------
    def sample(self, now: float) -> int:
        """Append one row per (metric, labelset) at simulated time ``now``.

        Returns the number of rows appended.
        """
        appended = 0
        for name in sorted(self._metrics):
            for row in self._metrics[name].sample_rows(now):
                self._rows.append(row)
                appended += 1
        self.n_samples += 1
        return appended

    def to_records(self) -> list[dict]:
        """The accumulated time series as a fresh list of row dicts."""
        return list(self._rows)

    def current(self) -> dict:
        """Latest value of every (counter/gauge) labelset, no timestamps."""
        out: dict[str, dict[str, float]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.kind == "histogram":
                continue
            out[name] = {
                _labels_text(key): metric._series[key]
                for key in sorted(metric._series)
            }
        return out
