"""Unified telemetry: metrics + spans joined to PERFRECUP provenance.

The paper characterizes workflows by fusing observations from many
layers on shared identifiers (task key, pthread ID, hostname, engine
timestamps).  This package adds the *live* half of that story:

* a labelled metrics registry (:mod:`~repro.telemetry.metrics`) fed by
  periodic samplers hooked into the simulation engine's monitor
  protocol (:mod:`~repro.telemetry.samplers`) — scheduler occupancy,
  worker memory/spill state, Mofka producer buffers and broker
  backlog, PFS OST queues, NIC utilization, live Darshan counts;
* a span tracer (:mod:`~repro.telemetry.spans`) whose task spans carry
  the same identifiers the Mofka provenance events carry, exported as
  Chrome trace-event JSON (``perfrecup trace``).

Everything is strictly opt-in: a run without a :class:`Telemetry`
object attaches no monitor and no plugins, so the disabled path costs
nothing and the recorded event streams are byte-identical either way
(samplers never schedule simulation events — they piggyback on event
pops).
"""

from __future__ import annotations

from .exporters import (
    chrome_trace,
    metrics_table,
    write_chrome_trace,
    write_metrics,
)
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .plugins import TelemetrySchedulerPlugin, TelemetryWorkerPlugin
from .samplers import PeriodicSampler, install_run_probes
from .spans import Span, SpanTracer, stable_span_id

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeriodicSampler",
    "Span",
    "SpanTracer",
    "Telemetry",
    "TelemetrySchedulerPlugin",
    "TelemetryWorkerPlugin",
    "chrome_trace",
    "install_run_probes",
    "metrics_table",
    "stable_span_id",
    "write_chrome_trace",
    "write_metrics",
]


class Telemetry:
    """One run's telemetry bundle: registry + tracer + sampler.

    Pass an instance to :func:`repro.workflows.run_workflow` (or
    directly to :class:`~repro.instrument.recorder.InstrumentedRun`)
    and the instrumentation layer wires everything up::

        telemetry = Telemetry(interval=0.5)
        result = run_workflow(workflow, telemetry=telemetry)
        trace = telemetry.chrome_trace()        # Chrome trace JSON
        table = telemetry.metrics_table()       # columnar series
    """

    def __init__(self, interval: float = 0.5, run_name: str = "run",
                 seed: int = 0):
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(run_name=run_name, seed=seed)
        self.sampler = PeriodicSampler(self.registry, interval=interval)
        self.scheduler_plugin: TelemetrySchedulerPlugin | None = None
        self.worker_plugins: list[TelemetryWorkerPlugin] = []

    # ------------------------------------------------------------------
    def instrument_run(self, run) -> "Telemetry":
        """Wire this bundle into one ``InstrumentedRun`` (called by it).

        Attaches the periodic sampler to the engine, installs the
        standard probes, rides the scheduler/worker plugin hooks, and
        observes every Mofka producer's flushes.
        """
        self.sampler.attach(run.env)
        install_run_probes(self.sampler, run)

        self.scheduler_plugin = TelemetrySchedulerPlugin(self.registry)
        self.scheduler_plugin.attach(run.dask.scheduler)
        for worker in run.dask.workers:
            plugin = TelemetryWorkerPlugin(self.registry, self.tracer,
                                           worker.address)
            plugin.attach(worker)
            self.worker_plugins.append(plugin)

        flush_latency = self.registry.histogram(
            "mofka.flush_latency", "producer flush RPC durations")
        flushed = self.registry.counter(
            "mofka.flushed_events", "events flushed to the broker")
        for producer in run.producers:
            producer.on_flush = self._flush_observer(
                producer.name, flush_latency, flushed)
        return self

    @staticmethod
    def _flush_observer(name, flush_latency, flushed):
        def observe(size: int, duration: float) -> None:
            flush_latency.observe(duration, producer=name)
            flushed.inc(size, producer=name)
        return observe

    # -- exports ---------------------------------------------------------
    def chrome_trace(self) -> dict:
        return chrome_trace(self.tracer)

    def metrics_table(self):
        return metrics_table(self.registry)

    def metrics_records(self) -> list[dict]:
        return self.registry.to_records()

    def persist(self, run_dir: str) -> list[str]:
        """Write ``telemetry/trace.json`` + ``telemetry/metrics.json``."""
        import os
        base = os.path.join(run_dir, "telemetry")
        return [
            write_chrome_trace(self.tracer, os.path.join(base, "trace.json")),
            write_metrics(self.registry, os.path.join(base, "metrics.json")),
        ]
