"""Span tracing with deterministic identifiers and Chrome export.

A :class:`SpanTracer` records named, timestamped spans and assigns
every one a trace-scoped ``span_id``.  The paper's analyses join Dask
and Darshan observations on shared identifiers — task key, pthread ID,
hostname (§III-E3) — so task spans carry exactly those fields in their
``args``, making the trace joinable with the PERFRECUP provenance
views rather than a parallel, disconnected universe.

IDs are BLAKE2 digests of the span's identity (trace id, name,
process, thread, ordinal), never ``id()``/``hash()``/wall clock, so a
rerun with the same seed produces byte-identical traces.

:meth:`SpanTracer.to_chrome` emits the Chrome trace-event JSON format
(``chrome://tracing`` / Perfetto): ``"X"`` complete events with
microsecond ``ts``/``dur``, ``pid`` = hostname, ``tid`` = pthread ID.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Span", "SpanTracer", "stable_span_id"]


def stable_span_id(*parts, nbytes: int = 8) -> str:
    """Deterministic hex identifier derived from ``parts``."""
    payload = "\x1f".join(str(part) for part in parts)
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=nbytes).hexdigest()


@dataclass
class Span:
    """One named interval on one (process, thread) track."""

    name: str
    cat: str
    start: float
    stop: Optional[float]
    pid: str             # process track: hostname (joins with Darshan)
    tid: int             # thread track: pthread ID (joins with DXT)
    span_id: str
    trace_id: str
    parent_id: str = ""
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.stop - self.start) if self.stop is not None else 0.0


class SpanTracer:
    """Collects spans; supports flat *complete* spans and begin/end
    nesting per (pid, tid) track."""

    def __init__(self, run_name: str = "run", seed: int = 0):
        self.run_name = run_name
        self.seed = seed
        self.trace_id = stable_span_id("trace", run_name, seed, nbytes=16)
        self.spans: list[Span] = []
        self._stacks: dict[tuple, list[Span]] = {}
        self._n = 0

    # ------------------------------------------------------------------
    def _new_span(self, name: str, cat: str, start: float,
                  stop: Optional[float], pid: str, tid: int,
                  args: Optional[dict]) -> Span:
        self._n += 1
        stack = self._stacks.get((pid, tid), ())
        parent_id = stack[-1].span_id if stack else ""
        return Span(
            name=name, cat=cat, start=start, stop=stop,
            pid=str(pid), tid=int(tid),
            span_id=stable_span_id(self.trace_id, name, pid, tid, self._n),
            trace_id=self.trace_id, parent_id=parent_id,
            args=dict(args or {}),
        )

    def add_complete(self, name: str, start: float, stop: float,
                     pid: str = "", tid: int = 0, cat: str = "",
                     args: Optional[dict] = None) -> Span:
        """Record one already-finished span."""
        span = self._new_span(name, cat, start, stop, pid, tid, args)
        self.spans.append(span)
        return span

    def begin(self, name: str, start: float, pid: str = "", tid: int = 0,
              cat: str = "", args: Optional[dict] = None) -> Span:
        """Open a nested span on the (pid, tid) track."""
        span = self._new_span(name, cat, start, None, pid, tid, args)
        self._stacks.setdefault((span.pid, span.tid), []).append(span)
        return span

    def end(self, stop: float, pid: str = "", tid: int = 0) -> Span:
        """Close the innermost open span on the (pid, tid) track."""
        stack = self._stacks.get((str(pid), int(tid)))
        if not stack:
            raise ValueError(f"no open span on track ({pid!r}, {tid})")
        span = stack.pop()
        span.stop = stop
        self.spans.append(span)
        return span

    def open_depth(self, pid: str = "", tid: int = 0) -> int:
        return len(self._stacks.get((str(pid), int(tid)), ()))

    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """The trace as a Chrome trace-event JSON document (dict)."""
        events: list[dict] = []
        for pid, tid in sorted({(s.pid, s.tid) for s in self.spans}):
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": tid,
                "args": {"name": pid},
            })
        for span in sorted(self.spans,
                           key=lambda s: (s.start, s.pid, s.tid, s.span_id)):
            stop = span.stop if span.stop is not None else span.start
            args = dict(span.args)
            args["span_id"] = span.span_id
            args["trace_id"] = span.trace_id
            if span.parent_id:
                args["parent_id"] = span.parent_id
            events.append({
                "name": span.name,
                "cat": span.cat or "default",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (stop - span.start) * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_id": self.trace_id,
                "run_name": self.run_name,
                "seed": self.seed,
            },
        }
