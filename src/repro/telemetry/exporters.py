"""Export telemetry as Chrome traces and PERFRECUP tables/files.

Two output shapes:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the span trace as
  a Chrome trace-event JSON document, loadable in ``chrome://tracing``
  or Perfetto (the ``perfrecup trace`` subcommand).
* :func:`metrics_table` / :func:`write_metrics` — the sampled metric
  series as a :class:`~repro.core.table.Table` (or JSON records file),
  the same columnar shape every other PERFRECUP view uses, so the
  analysis session can slice telemetry next to provenance.
"""

from __future__ import annotations

import json
import os

from ..core.table import Table
from .metrics import MetricsRegistry
from .spans import SpanTracer

__all__ = ["chrome_trace", "write_chrome_trace", "metrics_table",
           "write_metrics"]

METRIC_COLUMNS = ("time", "metric", "kind", "labels", "value")


def chrome_trace(tracer: SpanTracer) -> dict:
    """The tracer's spans as a Chrome trace-event document."""
    return tracer.to_chrome()


def write_chrome_trace(tracer: SpanTracer, path: str) -> str:
    """Write the Chrome trace JSON; returns ``path``."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer), fh, indent=1)
    return path


def metrics_table(registry: MetricsRegistry) -> Table:
    """The sampled series as a columnar table (time/metric/labels/value)."""
    return Table.from_records(registry.to_records(),
                              columns=METRIC_COLUMNS)


def write_metrics(registry: MetricsRegistry, path: str) -> str:
    """Write the sampled series as a JSON record list; returns ``path``."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(registry.to_records(), fh, indent=1)
    return path
