"""Experiment registry: every paper artifact this repo regenerates.

A machine-readable version of DESIGN.md's experiment index.  Each entry
maps a paper table/figure (or an ablation/extension) to the benchmark
that regenerates it, the workflow(s) involved, and the shape claims the
bench asserts.  ``perfrecup experiments`` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True)
class Experiment:
    id: str
    artifact: str
    bench: str
    workflows: tuple[str, ...]
    claims: tuple[str, ...]


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        id="T1", artifact="Table I: workflow characteristics",
        bench="benchmarks/bench_table1.py",
        workflows=("ImageProcessing", "ResNet152", "XGBOOST"),
        claims=(
            "3 / 1 / 74 task graphs",
            "~5.4k / 8645 / ~10.3k distinct tasks",
            "151 / 3929 / 61 distinct files (+our output stores)",
            "ResNet I/O count truncated by DXT buffers",
        ),
    ),
    Experiment(
        id="F1", artifact="Fig. 1: layered provenance chart",
        bench="benchmarks/bench_fig1_metadata.py",
        workflows=("ImageProcessing",),
        claims=("hardware / system+job / application layers captured",),
    ),
    Experiment(
        id="F3", artifact="Fig. 3: phase breakdown + variability",
        bench="benchmarks/bench_fig3.py",
        workflows=("ImageProcessing", "ResNet152", "XGBOOST"),
        claims=(
            "short workflows: total disproportionately long",
            "XGBOOST amortizes coordination; most variable",
        ),
    ),
    Experiment(
        id="F4", artifact="Fig. 4: per-thread I/O timeline",
        bench="benchmarks/bench_fig4.py",
        workflows=("ImageProcessing",),
        claims=(
            "3 read bursts each followed by writes",
            "phase-2/3 writes are kB-scale",
            "10-25 reads of 4 MB per image",
        ),
    ),
    Experiment(
        id="F5", artifact="Fig. 5: comm time vs size",
        bench="benchmarks/bench_fig5.py",
        workflows=("ResNet152",),
        claims=(
            "intra- and inter-node populations",
            "wide duration spread at fixed size",
            "slow small messages near start",
        ),
    ),
    Experiment(
        id="F6", artifact="Fig. 6: parallel coordinates",
        bench="benchmarks/bench_fig6.py",
        workflows=("XGBOOST",),
        claims=(
            "read_parquet-fused-assign longest",
            "fused outputs > 128 MB",
        ),
    ),
    Experiment(
        id="F7", artifact="Fig. 7: warning distribution",
        bench="benchmarks/bench_fig7.py",
        workflows=("XGBOOST",),
        claims=(
            "unresponsive-loop warnings concentrate early",
            "rate elevated during fused reads",
        ),
    ),
    Experiment(
        id="F8", artifact="Fig. 8: task provenance summary",
        bench="benchmarks/bench_fig8.py",
        workflows=("XGBOOST",),
        claims=(
            "full lineage: deps, states, worker, pthread, I/O records",
        ),
    ),
    Experiment(
        id="A1", artifact="Ablation: work stealing (§V)",
        bench="benchmarks/bench_ablation_stealing.py",
        workflows=("ImageProcessing",),
        claims=("stealing moves tasks and data; same results",),
    ),
    Experiment(
        id="A2", artifact="Ablation: DXT buffer limit (footnote 9)",
        bench="benchmarks/bench_ablation_dxt_buffer.py",
        workflows=("ResNet152",),
        claims=(
            "observed ops grow with budget; POSIX counters invariant",
            "adaptive capture keeps sampling late ops",
        ),
    ),
    Experiment(
        id="A3", artifact="Ablation: Mofka batching (§VI overhead)",
        bench="benchmarks/bench_ablation_mofka.py",
        workflows=("ImageProcessing",),
        claims=(
            "fewer RPCs with bigger batches; wall time insensitive",
        ),
    ),
    Experiment(
        id="A4", artifact="Ablation: placement locality weight (§V)",
        bench="benchmarks/bench_ablation_locality.py",
        workflows=("ImageProcessing",),
        claims=("stronger locality bias moves less data",),
    ),
    Experiment(
        id="A5", artifact="Ablation: memory limit + spill-to-disk",
        bench="benchmarks/bench_ablation_spill.py",
        workflows=("XGBOOST",),
        claims=("tighter memory spills more, same results",),
    ),
    Experiment(
        id="E1", artifact="Extension: scaling study (§VI)",
        bench="benchmarks/bench_scaling.py",
        workflows=("ImageProcessing",),
        claims=("efficiency decays with node count for short runs",),
    ),
    Experiment(
        id="E2", artifact="Extension: cross-platform comparison (§III)",
        bench="benchmarks/bench_cross_platform.py",
        workflows=("ImageProcessing",),
        claims=(
            "same record schema on both machines",
            "commodity cluster: slower I/O and transfers, same tasks",
        ),
    ),
)


def get_experiment(experiment_id: str) -> Experiment:
    for experiment in EXPERIMENTS:
        if experiment.id == experiment_id.upper():
            return experiment
    raise KeyError(f"unknown experiment {experiment_id!r}; "
                   f"known: {[e.id for e in EXPERIMENTS]}")
