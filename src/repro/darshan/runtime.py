"""Darshan runtime: the per-process instrumentation layer.

"We instrument each worker with our modified version of Darshan in
order to incorporate I/O instrumentation into our provenance data"
(§III-E3).  A :class:`DarshanRuntime` wraps the parallel-file-system
data path of one worker process: it satisfies the worker's I/O-layer
contract (``io(path, op, offset, length, thread_id)``), forwards each
operation to the PFS model, and records POSIX counters plus a DXT
segment carrying the calling pthread ID.

Data is collected "separately and then fuse[d] ... at analysis time to
avoid cross-component communication overhead" (§III-E3): the runtime
holds everything in memory and :meth:`finalize` emits a standalone
Darshan log at shutdown, exactly like the real tool.
"""

from __future__ import annotations

from typing import Optional

from ..platform import ParallelFileSystem
from .dxt import DEFAULT_BUFFER_LIMIT, DXTModule, DXTSegment
from .heatmap import HeatmapModule
from .log import DarshanLog
from .posix import PosixCounters

__all__ = ["DarshanRuntime"]


class DarshanRuntime:
    """Instrumented I/O layer for one worker process."""

    def __init__(self, pfs: ParallelFileSystem, jobid: str, rank: int,
                 hostname: str, exe: str = "dask-worker",
                 dxt_buffer_limit: int = DEFAULT_BUFFER_LIMIT,
                 dxt_enabled: bool = True,
                 dxt_module: Optional[DXTModule] = None,
                 segment_callback=None):
        self.pfs = pfs
        self.jobid = jobid
        self.rank = rank
        self.hostname = hostname
        self.exe = exe
        self.dxt_enabled = dxt_enabled
        self.start_time = pfs.env.now
        self._posix: dict[str, PosixCounters] = {}
        self._dxt = dxt_module if dxt_module is not None \
            else DXTModule(dxt_buffer_limit)
        #: Optional online hook: called with every recorded segment.
        #: The paper's future work ("capturing Darshan records and
        #: pushing them to Mofka at runtime to have a fully online
        #: system", §VI) plugs a Mofka producer in here.
        self.segment_callback = segment_callback
        self._heatmap = HeatmapModule()
        self._seen_paths: set[str] = set()
        self._finalized: Optional[DarshanLog] = None

    # -- the instrumented data path ------------------------------------
    def io(self, path: str, op: str, offset: int, length: int,
           thread_id: int):
        """Simulation process: forward to the PFS and record everything."""
        record = yield self.pfs.env.process(
            self.pfs.io(path, op, offset, length)
        )
        counters = self._posix.get(path)
        if counters is None:
            counters = PosixCounters(path=path)
            counters.record_open()
            self._posix[path] = counters
        counters.record(record.op, record.offset, record.length,
                        record.start, record.stop)
        self._heatmap.record(record.op, record.length, record.start,
                             record.stop)
        if self.dxt_enabled:
            segment = DXTSegment(
                path=path, op=record.op, offset=record.offset,
                length=record.length, start=record.start, end=record.stop,
                pthread_id=thread_id,
            )
            stored = self._dxt.record(segment)
            if stored and self.segment_callback is not None:
                self.segment_callback(self, segment)
        return record

    # -- introspection ----------------------------------------------------
    @property
    def n_records(self) -> int:
        return len(self._posix)

    @property
    def dxt_truncated(self) -> bool:
        return self._dxt.truncated

    def live_stats(self) -> dict:
        """Mid-run capture state (telemetry probe; no finalization)."""
        return {
            "posix_records": len(self._posix),
            "dxt_segments": len(self._dxt.segments),
            "dxt_truncated": self._dxt.truncated,
        }

    # -- shutdown ------------------------------------------------------------
    def finalize(self) -> DarshanLog:
        """Produce the per-process log (idempotent)."""
        if self._finalized is None:
            self._finalized = DarshanLog(
                jobid=self.jobid, rank=self.rank, hostname=self.hostname,
                exe=self.exe, start_time=self.start_time,
                end_time=self.pfs.env.now,
                posix_records=list(self._posix.values()),
                dxt_segments=list(self._dxt.segments),
                dxt_truncated=self._dxt.truncated,
                dxt_dropped=self._dxt.dropped,
                heatmap=self._heatmap,
                metadata={"dxt_buffer_limit": self._dxt.buffer_limit},
            )
        return self._finalized
