"""Adaptive DXT capture (paper future work, §VI).

"We also will explore options for dynamically adjusting our data
capture in response to changes in workflow behavior."  This module is
that exploration: an :class:`AdaptiveDXTModule` that *degrades
gracefully* instead of truncating.  As the trace buffer fills past
configurable watermarks, the module switches to 1-in-k systematic
sampling with increasing k, so late-run I/O keeps statistical coverage
rather than vanishing entirely (the failure mode behind the paper's
ResNet152 footnote).

Every stored segment knows the sampling stride in force when it was
kept, so analyses can re-weight counts (``estimated_total_ops``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .dxt import DEFAULT_BUFFER_LIMIT, DXTModule, DXTSegment

__all__ = ["AdaptiveDXTModule", "SamplingEpoch"]


@dataclass(frozen=True)
class SamplingEpoch:
    """A contiguous span of operations traced at one stride."""

    stride: int
    first_op_index: int
    n_ops: int = 0
    n_stored: int = 0


class AdaptiveDXTModule(DXTModule):
    """DXT buffer that downsamples under pressure instead of dropping.

    Watermarks are fractions of ``buffer_limit``; crossing one doubles
    the sampling stride (keep 1 of 2, then 1 of 4, ...).  The stride
    history is kept as :class:`SamplingEpoch` records, which is exactly
    the metadata an analysis needs to correct op counts.
    """

    def __init__(self, buffer_limit: int = DEFAULT_BUFFER_LIMIT,
                 watermarks: tuple[float, ...] = (0.5, 0.75, 0.9)):
        super().__init__(buffer_limit)
        if any(not 0 < w < 1 for w in watermarks):
            raise ValueError("watermarks must be in (0, 1)")
        self.watermarks = tuple(sorted(watermarks))
        self.stride = 1
        self._op_index = 0
        self._epochs: list[dict] = [
            {"stride": 1, "first_op_index": 0, "n_ops": 0, "n_stored": 0}
        ]

    # ------------------------------------------------------------------
    def record(self, segment: DXTSegment) -> bool:
        self._maybe_escalate()
        keep = (self._op_index % self.stride) == 0
        self._op_index += 1
        if keep and len(self.segments) >= self.buffer_limit:
            # Amortized decimation: evict every other stored segment and
            # double the stride, so the buffer always has headroom and
            # *late* operations keep being sampled — the property plain
            # DXT lacks (it goes blind once the buffer fills).
            evicted = self.segments[1::2]
            self.segments = self.segments[0::2]
            self.dropped += len(evicted)
            self.stride *= 2
            self._epochs.append({
                "stride": self.stride, "first_op_index": self._op_index - 1,
                "n_ops": 0, "n_stored": 0,
            })
        epoch = self._epochs[-1]
        epoch["n_ops"] += 1
        if not keep:
            self.dropped += 1
            return False
        self.segments.append(segment)
        epoch["n_stored"] += 1
        return True

    def _maybe_escalate(self) -> None:
        fill = len(self.segments) / self.buffer_limit
        crossed = sum(1 for w in self.watermarks if fill >= w)
        target_stride = 2 ** crossed
        if target_stride > self.stride:
            self.stride = target_stride
            self._epochs.append({
                "stride": self.stride, "first_op_index": self._op_index,
                "n_ops": 0, "n_stored": 0,
            })

    # ------------------------------------------------------------------
    @property
    def epochs(self) -> list[SamplingEpoch]:
        return [SamplingEpoch(**e) for e in self._epochs]

    @property
    def estimated_total_ops(self) -> int:
        """Stride-corrected estimate of how many ops actually happened."""
        return sum(e["n_ops"] for e in self._epochs)

    @property
    def coverage(self) -> float:
        """Fraction of operations stored (1.0 until the first watermark)."""
        total = self.estimated_total_ops
        return len(self.segments) / total if total else 1.0
