"""DXT (Darshan eXtended Tracing) with the paper's pthread-ID extension.

Stock DXT records one segment per POSIX operation: op type, offset,
length, start and end timestamps.  The paper's contribution is one
field wider: "we extend the DXT module to capture the POSIX thread
(pthread) IDs.  These can later be correlated with the thread
identifier returned by ``threading.get_ident()`` at the
Dask.distributed level" (§III-E3).  :class:`DXTSegment` carries that
``pthread_id``.

DXT buffers trace segments in a bounded memory region; once the budget
is exhausted, further segments are silently dropped and the record is
flagged truncated.  The paper hits exactly this: "The I/O operation
count for ResNet152 is incomplete due to default Darshan
instrumentation buffer limits" (footnote 9).  ``buffer_limit`` makes
the artifact reproducible and the A2 ablation sweeps it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DXTSegment", "DXTModule", "DEFAULT_BUFFER_LIMIT"]

#: Default per-process segment budget (mirrors Darshan's modest default
#: DXT memory; small enough that file-heavy workflows overflow it).
DEFAULT_BUFFER_LIMIT = 2048


@dataclass(frozen=True)
class DXTSegment:
    """One traced POSIX operation."""

    path: str
    op: str              # "read" | "write"
    offset: int
    length: int
    start: float
    end: float
    pthread_id: int      # << the paper's extension

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "file": self.path, "op": self.op, "offset": self.offset,
            "length": self.length, "start": self.start, "end": self.end,
            "pthread_id": self.pthread_id,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "DXTSegment":
        return cls(
            path=raw["file"], op=raw["op"], offset=raw["offset"],
            length=raw["length"], start=raw["start"], end=raw["end"],
            pthread_id=raw["pthread_id"],
        )


class DXTModule:
    """Per-process trace buffer with a hard segment budget."""

    def __init__(self, buffer_limit: int = DEFAULT_BUFFER_LIMIT):
        if buffer_limit < 1:
            raise ValueError("buffer_limit must be >= 1")
        self.buffer_limit = buffer_limit
        self.segments: list[DXTSegment] = []
        self.dropped = 0

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def record(self, segment: DXTSegment) -> bool:
        """Store one segment; returns False if the buffer was full."""
        if len(self.segments) >= self.buffer_limit:
            self.dropped += 1
            return False
        self.segments.append(segment)
        return True

    def by_thread(self) -> dict[int, list[DXTSegment]]:
        out: dict[int, list[DXTSegment]] = {}
        for segment in self.segments:
            out.setdefault(segment.pthread_id, []).append(segment)
        return out

    def by_file(self) -> dict[str, list[DXTSegment]]:
        out: dict[str, list[DXTSegment]] = {}
        for segment in self.segments:
            out.setdefault(segment.path, []).append(segment)
        return out
