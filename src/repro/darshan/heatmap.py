"""Darshan HEATMAP module.

Real Darshan (3.4+) ships a ``HEATMAP`` module: per-process histograms
of read/write bytes over fixed-width time bins, cheap enough to stay on
by default and the backbone of the `darshan job summary` intensity
plots.  This is the simulated counterpart: the runtime feeds every
operation into :class:`HeatmapModule`, which maintains one row of time
bins per direction, widening bins (by doubling) whenever the run
outgrows the allotted bin count — exactly Darshan's adaptive scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HeatmapModule", "merge_heatmaps"]

#: Darshan's default heatmap width.
DEFAULT_NBINS = 100


class HeatmapModule:
    """Per-process read/write intensity over adaptive time bins."""

    def __init__(self, nbins: int = DEFAULT_NBINS,
                 initial_bin_width: float = 0.1):
        if nbins < 2:
            raise ValueError("need at least 2 bins")
        if initial_bin_width <= 0:
            raise ValueError("bin width must be positive")
        self.nbins = nbins
        self.bin_width = float(initial_bin_width)
        self.read_bytes = np.zeros(nbins)
        self.write_bytes = np.zeros(nbins)
        self.read_ops = np.zeros(nbins, dtype=np.int64)
        self.write_ops = np.zeros(nbins, dtype=np.int64)

    # ------------------------------------------------------------------
    def _bin_for(self, time: float) -> int:
        while time >= self.nbins * self.bin_width:
            self._widen()
        return int(time // self.bin_width)

    def _widen(self) -> None:
        """Double the bin width, folding pairs of bins together."""
        for array in (self.read_bytes, self.write_bytes,
                      self.read_ops, self.write_ops):
            folded = array[0::2] + array[1::2]
            array[:len(folded)] = folded
            array[len(folded):] = 0
        self.bin_width *= 2

    def record(self, op: str, nbytes: int, start: float,
               end: float) -> None:
        """Spread one operation's bytes across the bins it spans."""
        if op not in ("read", "write"):
            raise ValueError(f"unknown op {op!r}")
        if end < start:
            raise ValueError("end before start")
        bytes_array = self.read_bytes if op == "read" else self.write_bytes
        ops_array = self.read_ops if op == "read" else self.write_ops
        # Resolve the *end* bin first: it may widen the bins, and both
        # indices must be computed against the same (final) bin width.
        last = self._bin_for(max(start, end - 1e-12))
        first = self._bin_for(start)
        ops_array[first] += 1
        if first == last:
            bytes_array[first] += nbytes
            return
        span = end - start
        for b in range(first, last + 1):
            lo = max(start, b * self.bin_width)
            hi = min(end, (b + 1) * self.bin_width)
            bytes_array[b] += nbytes * (hi - lo) / span

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> float:
        return self.nbins * self.bin_width

    def to_dict(self) -> dict:
        return {
            "nbins": self.nbins,
            "bin_width": self.bin_width,
            "read_bytes": self.read_bytes.tolist(),
            "write_bytes": self.write_bytes.tolist(),
            "read_ops": self.read_ops.tolist(),
            "write_ops": self.write_ops.tolist(),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "HeatmapModule":
        module = cls(nbins=raw["nbins"], initial_bin_width=raw["bin_width"])
        module.read_bytes = np.asarray(raw["read_bytes"], dtype=float)
        module.write_bytes = np.asarray(raw["write_bytes"], dtype=float)
        module.read_ops = np.asarray(raw["read_ops"], dtype=np.int64)
        module.write_ops = np.asarray(raw["write_ops"], dtype=np.int64)
        return module


def merge_heatmaps(heatmaps: list[HeatmapModule]) -> HeatmapModule:
    """Aggregate per-process heatmaps into one job-level heatmap.

    All inputs are first widened to the coarsest bin width present, as
    `darshan job summary` does when ranks diverge.
    """
    if not heatmaps:
        raise ValueError("no heatmaps to merge")
    nbins = heatmaps[0].nbins
    if any(h.nbins != nbins for h in heatmaps):
        raise ValueError("heatmaps must share nbins")
    target = max(h.bin_width for h in heatmaps)
    merged = HeatmapModule(nbins=nbins, initial_bin_width=target)
    for heatmap in heatmaps:
        copy = HeatmapModule.from_dict(heatmap.to_dict())
        while copy.bin_width < target:
            copy._widen()
        merged.read_bytes += copy.read_bytes
        merged.write_bytes += copy.write_bytes
        merged.read_ops += copy.read_ops
        merged.write_ops += copy.write_ops
    return merged
