"""PyDarshan-style report over a set of per-process logs.

The paper leans on "availability of flexible analysis tools" [17]
(PyDarshan) for working with Darshan data.  :class:`DarshanReport`
aggregates the logs of all worker processes of one run and answers the
questions the single-source analyses ask: totals, per-file summaries,
access-size histograms, and flat segment tables ready for PERFRECUP's
tabular layer.
"""

from __future__ import annotations

import glob
import os
from typing import Iterable, Optional

from .log import DarshanLog, read_log

__all__ = ["DarshanReport"]


class DarshanReport:
    """Aggregated view over one run's Darshan logs."""

    def __init__(self, logs: Iterable[DarshanLog]):
        self.logs = list(logs)

    @classmethod
    def from_directory(cls, directory: str,
                       pattern: str = "*.darshan.json.gz") -> "DarshanReport":
        paths = sorted(glob.glob(os.path.join(directory, pattern)))
        if not paths:
            raise FileNotFoundError(
                f"no darshan logs matching {pattern} in {directory}"
            )
        return cls(read_log(p) for p in paths)

    # -- aggregates ------------------------------------------------------
    @property
    def total_io_ops(self) -> int:
        return sum(log.total_io_ops for log in self.logs)

    @property
    def total_bytes(self) -> int:
        return sum(log.total_bytes for log in self.logs)

    @property
    def total_io_time(self) -> float:
        return sum(log.total_io_time for log in self.logs)

    @property
    def any_truncated(self) -> bool:
        return any(log.dxt_truncated for log in self.logs)

    @property
    def dropped_segments(self) -> int:
        return sum(log.dxt_dropped for log in self.logs)

    def distinct_files(self) -> list[str]:
        files: set[str] = set()
        for log in self.logs:
            files.update(log.files())
        return sorted(files)

    def per_file_summary(self) -> list[dict]:
        """One row per file aggregated over processes."""
        rows: dict[str, dict] = {}
        for log in self.logs:
            for record in log.posix_records:
                row = rows.setdefault(record.path, {
                    "file": record.path, "reads": 0, "writes": 0,
                    "bytes_read": 0, "bytes_written": 0,
                    "read_time": 0.0, "write_time": 0.0, "processes": 0,
                })
                row["reads"] += record.reads
                row["writes"] += record.writes
                row["bytes_read"] += record.bytes_read
                row["bytes_written"] += record.bytes_written
                row["read_time"] += record.read_time
                row["write_time"] += record.write_time
                row["processes"] += 1
        return [rows[path] for path in sorted(rows)]

    def size_histogram(self) -> dict[str, int]:
        """Merged access-size histogram over all records."""
        out: dict[str, int] = {}
        for log in self.logs:
            for record in log.posix_records:
                for label, count in record.size_histogram.items():
                    out[label] = out.get(label, 0) + count
        return out

    def dxt_rows(self) -> list[dict]:
        """Flat DXT segment table with process attribution.

        Columns: hostname, rank, pthread_id, file, op, offset, length,
        start, end — the exact fields PERFRECUP joins against Dask task
        records (hostname + pthread_id + timestamps).
        """
        rows = []
        for log in self.logs:
            for segment in log.dxt_segments:
                rows.append({
                    "hostname": log.hostname,
                    "rank": log.rank,
                    "pthread_id": segment.pthread_id,
                    "file": segment.path,
                    "op": segment.op,
                    "offset": segment.offset,
                    "length": segment.length,
                    "start": segment.start,
                    "end": segment.end,
                })
        rows.sort(key=lambda r: (r["start"], r["rank"]))
        return rows

    def job_heatmap(self):
        """Merged job-level HEATMAP over all processes (or None)."""
        from .heatmap import merge_heatmaps
        heatmaps = [log.heatmap for log in self.logs
                    if log.heatmap is not None]
        if not heatmaps:
            return None
        return merge_heatmaps(heatmaps)

    def summary(self) -> dict:
        return {
            "processes": len(self.logs),
            "distinct_files": len(self.distinct_files()),
            "total_io_ops": self.total_io_ops,
            "total_bytes": self.total_bytes,
            "total_io_time": self.total_io_time,
            "dxt_truncated": self.any_truncated,
            "dxt_dropped": self.dropped_segments,
        }
