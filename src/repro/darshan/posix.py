"""POSIX-module counters, in the style of Darshan's POSIX module.

Darshan "collects a plethora of information, including I/O operation
counts, access sizes, and cumulative times" (§III-C) per file record
per process.  This module reproduces the per-record counter set this
reproduction's analyses need: operation and byte counts, cumulative and
extreme operation times, extent watermarks, and the access-size
histogram buckets familiar from real Darshan logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PosixCounters", "SIZE_BINS", "size_bin_label"]

#: Access-size histogram bin upper bounds (bytes), Darshan's classic bins.
SIZE_BINS = (
    100, 1024, 10 * 1024, 100 * 1024, 1024**2, 4 * 1024**2, 10 * 1024**2,
    100 * 1024**2, 1024**3,
)

_BIN_LABELS = (
    "0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M", "1M_4M", "4M_10M",
    "10M_100M", "100M_1G", "1G_PLUS",
)


def size_bin_label(length: int) -> str:
    """Histogram bucket name for an access of ``length`` bytes."""
    for bound, label in zip(SIZE_BINS, _BIN_LABELS):
        if length <= bound:
            return label
    return _BIN_LABELS[-1]


@dataclass
class PosixCounters:
    """Counters for one (file, process) record."""

    path: str
    opens: int = 0
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_time: float = 0.0
    write_time: float = 0.0
    max_byte_read: int = -1
    max_byte_written: int = -1
    fastest_op_time: float = float("inf")
    slowest_op_time: float = 0.0
    first_op_start: float = float("inf")
    last_op_end: float = 0.0
    size_histogram: dict = field(default_factory=dict)

    def record_open(self) -> None:
        self.opens += 1

    def record(self, op: str, offset: int, length: int,
               start: float, end: float) -> None:
        duration = end - start
        if op == "read":
            self.reads += 1
            self.bytes_read += length
            self.read_time += duration
            if length > 0:
                self.max_byte_read = max(self.max_byte_read,
                                         offset + length - 1)
        elif op == "write":
            self.writes += 1
            self.bytes_written += length
            self.write_time += duration
            if length > 0:
                self.max_byte_written = max(self.max_byte_written,
                                            offset + length - 1)
        else:
            raise ValueError(f"unknown op {op!r}")
        self.fastest_op_time = min(self.fastest_op_time, duration)
        self.slowest_op_time = max(self.slowest_op_time, duration)
        self.first_op_start = min(self.first_op_start, start)
        self.last_op_end = max(self.last_op_end, end)
        label = f"{op.upper()}_{size_bin_label(length)}"
        self.size_histogram[label] = self.size_histogram.get(label, 0) + 1

    def to_dict(self) -> dict:
        """Flat counter mapping using Darshan-style counter names."""
        return {
            "file": self.path,
            "POSIX_OPENS": self.opens,
            "POSIX_READS": self.reads,
            "POSIX_WRITES": self.writes,
            "POSIX_BYTES_READ": self.bytes_read,
            "POSIX_BYTES_WRITTEN": self.bytes_written,
            "POSIX_F_READ_TIME": self.read_time,
            "POSIX_F_WRITE_TIME": self.write_time,
            "POSIX_MAX_BYTE_READ": self.max_byte_read,
            "POSIX_MAX_BYTE_WRITTEN": self.max_byte_written,
            "POSIX_F_FASTEST_OP_TIME":
                0.0 if self.fastest_op_time == float("inf")
                else self.fastest_op_time,
            "POSIX_F_SLOWEST_OP_TIME": self.slowest_op_time,
            "POSIX_F_OPEN_START_TIMESTAMP":
                0.0 if self.first_op_start == float("inf")
                else self.first_op_start,
            "POSIX_F_CLOSE_END_TIMESTAMP": self.last_op_end,
            "SIZE_HISTOGRAM": dict(self.size_histogram),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "PosixCounters":
        counters = cls(path=raw["file"])
        counters.opens = raw["POSIX_OPENS"]
        counters.reads = raw["POSIX_READS"]
        counters.writes = raw["POSIX_WRITES"]
        counters.bytes_read = raw["POSIX_BYTES_READ"]
        counters.bytes_written = raw["POSIX_BYTES_WRITTEN"]
        counters.read_time = raw["POSIX_F_READ_TIME"]
        counters.write_time = raw["POSIX_F_WRITE_TIME"]
        counters.max_byte_read = raw["POSIX_MAX_BYTE_READ"]
        counters.max_byte_written = raw["POSIX_MAX_BYTE_WRITTEN"]
        counters.fastest_op_time = raw["POSIX_F_FASTEST_OP_TIME"]
        counters.slowest_op_time = raw["POSIX_F_SLOWEST_OP_TIME"]
        counters.first_op_start = raw["POSIX_F_OPEN_START_TIMESTAMP"]
        counters.last_op_end = raw["POSIX_F_CLOSE_END_TIMESTAMP"]
        counters.size_histogram = dict(raw["SIZE_HISTOGRAM"])
        return counters
