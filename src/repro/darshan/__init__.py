"""Darshan-like I/O characterization with task-level DXT tracing.

The I/O observation layer of the reproduction (§III-C, §III-E3): a
per-worker-process runtime that forwards I/O to the PFS model while
recording POSIX counters and DXT trace segments extended with POSIX
thread IDs — the join key that lets PERFRECUP attribute each I/O
operation to the Dask task that issued it.
"""

from .adaptive import AdaptiveDXTModule, SamplingEpoch
from .analysis import DarshanReport
from .dxt import DEFAULT_BUFFER_LIMIT, DXTModule, DXTSegment
from .heatmap import HeatmapModule, merge_heatmaps
from .log import DarshanLog, read_log, write_log
from .posix import PosixCounters, size_bin_label
from .runtime import DarshanRuntime

__all__ = [
    "AdaptiveDXTModule",
    "DEFAULT_BUFFER_LIMIT",
    "DXTModule",
    "DXTSegment",
    "DarshanLog",
    "DarshanReport",
    "DarshanRuntime",
    "HeatmapModule",
    "merge_heatmaps",
    "SamplingEpoch",
    "PosixCounters",
    "read_log",
    "size_bin_label",
    "write_log",
]
