"""Darshan log files: writer and reader.

One log per instrumented process (per Dask worker here), as Darshan
produces one log per MPI process/application.  The on-disk format is
compressed JSON — not Darshan's binary format, but carrying the same
record structure: a job header, POSIX per-file counter records, and
DXT trace segments (with the pthread-ID extension), plus the
truncation flag from the bounded DXT buffer.
"""

from __future__ import annotations

import gzip
import json
import os
from dataclasses import dataclass, field
from typing import Optional

from .dxt import DXTModule, DXTSegment
from .heatmap import HeatmapModule
from .posix import PosixCounters

__all__ = ["DarshanLog", "write_log", "read_log"]


@dataclass
class DarshanLog:
    """In-memory form of one per-process characterization log."""

    jobid: str
    rank: int
    hostname: str
    exe: str
    start_time: float
    end_time: float
    posix_records: list[PosixCounters] = field(default_factory=list)
    dxt_segments: list[DXTSegment] = field(default_factory=list)
    dxt_truncated: bool = False
    dxt_dropped: int = 0
    heatmap: Optional[HeatmapModule] = None
    metadata: dict = field(default_factory=dict)

    @property
    def total_io_ops(self) -> int:
        return sum(r.reads + r.writes for r in self.posix_records)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes_read + r.bytes_written
                   for r in self.posix_records)

    @property
    def total_io_time(self) -> float:
        return sum(r.read_time + r.write_time for r in self.posix_records)

    def files(self) -> list[str]:
        return sorted(r.path for r in self.posix_records)

    def to_dict(self) -> dict:
        return {
            "header": {
                "version": "3.4.x+taskprov",
                "jobid": self.jobid,
                "rank": self.rank,
                "hostname": self.hostname,
                "exe": self.exe,
                "start_time": self.start_time,
                "end_time": self.end_time,
                "metadata": self.metadata,
            },
            "posix": [r.to_dict() for r in self.posix_records],
            "dxt": {
                "truncated": self.dxt_truncated,
                "dropped": self.dxt_dropped,
                "segments": [s.to_dict() for s in self.dxt_segments],
            },
            "heatmap": self.heatmap.to_dict()
            if self.heatmap is not None else None,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "DarshanLog":
        header = raw["header"]
        return cls(
            jobid=header["jobid"], rank=header["rank"],
            hostname=header["hostname"], exe=header["exe"],
            start_time=header["start_time"], end_time=header["end_time"],
            metadata=header.get("metadata", {}),
            posix_records=[
                PosixCounters.from_dict(r) for r in raw["posix"]
            ],
            dxt_segments=[
                DXTSegment.from_dict(s) for s in raw["dxt"]["segments"]
            ],
            dxt_truncated=raw["dxt"]["truncated"],
            dxt_dropped=raw["dxt"]["dropped"],
            heatmap=HeatmapModule.from_dict(raw["heatmap"])
            if raw.get("heatmap") else None,
        )


def write_log(log: DarshanLog, path: str) -> str:
    """Write one log as gzipped JSON; returns the path written."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        json.dump(log.to_dict(), fh)
    return path


def read_log(path: str) -> DarshanLog:
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        return DarshanLog.from_dict(json.load(fh))
