"""Shared-resource primitives for the simulation kernel.

Three primitives cover every contention point in the reproduction:

* :class:`Resource` — a counted semaphore with a FIFO wait queue.  Used
  for worker thread pools, NIC send/receive channels, and PFS object
  storage target (OST) service slots.
* :class:`Store` — a FIFO buffer of Python objects with blocking ``get``
  and optionally bounded ``put``.  Used for message queues between the
  scheduler and workers and for Mofka partition buffers.
* :class:`Container` — a continuous-level tank.  Used for worker memory
  accounting.

All wait queues are strictly FIFO so that simulations are deterministic
for a fixed seed.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "Request", "Store", "Container"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Resource:
    """Counted semaphore with FIFO granting.

    ``capacity`` slots may be held simultaneously; further requests queue.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(req)
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a slot; hands it to the oldest queued request."""
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing a request that was never granted cancels it.
            try:
                self.queue.remove(request)
                return
            except ValueError:
                raise SimulationError("release of unknown request") from None
        while self.queue:
            nxt = self.queue.popleft()
            if nxt.triggered:
                continue  # cancelled while queued
            self.users.append(nxt)
            nxt.succeed(nxt)
            break

    def cancel(self, request: Request) -> None:
        """Withdraw a queued (ungranted) request."""
        try:
            self.queue.remove(request)
        except ValueError:
            pass


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)


class Store:
    """FIFO object buffer with blocking get and bounded put."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        event = StorePut(self, item)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._dispatch()
        else:
            self._putters.append(event)
        return event

    def get(self) -> StoreGet:
        event = StoreGet(self)
        if self.items:
            event.succeed(self.items.popleft())
            self._admit()
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: "StoreGet | StorePut") -> None:
        """Withdraw a pending (untriggered) get or put."""
        if isinstance(event, StoreGet):
            try:
                self._getters.remove(event)
            except ValueError:
                pass
        else:
            try:
                self._putters.remove(event)
            except ValueError:
                pass

    def _dispatch(self) -> None:
        while self.items and self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(self.items.popleft())
        self._admit()

    def _admit(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            if putter.triggered:
                continue
            self.items.append(putter.item)
            putter.succeed()
            self._dispatch()


class ContainerEvent(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        self.amount = amount


class Container:
    """Continuous-level tank with blocking get when short of level."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[ContainerEvent] = deque()
        self._putters: Deque[ContainerEvent] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerEvent:
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = ContainerEvent(self, amount)
        if self._level + amount <= self.capacity:
            self._level += amount
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append(event)
        return event

    def get(self, amount: float) -> ContainerEvent:
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = ContainerEvent(self, amount)
        if amount <= self._level:
            self._level -= amount
            event.succeed()
            self._serve_putters()
        else:
            self._getters.append(event)
        return event

    def _serve_getters(self) -> None:
        while self._getters and self._getters[0].amount <= self._level:
            event = self._getters.popleft()
            if event.triggered:
                continue
            self._level -= event.amount
            event.succeed()

    def _serve_putters(self) -> None:
        while self._putters and self._level + self._putters[0].amount <= self.capacity:
            event = self._putters.popleft()
            if event.triggered:
                continue
            self._level += event.amount
            event.succeed()
            self._serve_getters()
