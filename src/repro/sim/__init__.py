"""Discrete-event simulation kernel underlying every substrate.

Public surface:

* :class:`~repro.sim.engine.Environment` — the virtual clock + event loop.
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Timeout`,
  :class:`~repro.sim.engine.Process`, :class:`~repro.sim.engine.AllOf`,
  :class:`~repro.sim.engine.AnyOf` — the event vocabulary.
* :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.Container` — contention primitives.
* :class:`~repro.sim.random.RandomStreams` — named reproducible RNG streams.
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    MonitorChain,
    Process,
    SimulationError,
    Timeout,
)
from .random import RandomStreams, stable_seed
from .resources import Container, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "MonitorChain",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "stable_seed",
]
