"""Discrete-event simulation kernel.

This module implements a small, self-contained discrete-event simulation
engine in the style of SimPy: *processes* are Python generators that
``yield`` :class:`Event` objects, and an :class:`Environment` advances a
virtual clock by popping scheduled events off the event queue.

Every substrate in this repository (the Dask-like workflow management
system, the network and parallel-file-system models, the Mofka event
streaming service) runs on top of this kernel, which gives the whole
reproduction a single, deterministic notion of time.  Timestamps recorded
by the instrumentation layers are engine timestamps, exactly as the paper
correlates wall-clock timestamps across Darshan and Dask logs.

Design notes
------------
* Events are scheduled with a ``(time, priority, sequence)`` key; the
  monotonically increasing sequence number guarantees FIFO ordering of
  simultaneous events, which keeps runs bit-reproducible for a fixed
  seed.
* A process that raises is marked *failed*; the exception propagates to
  any process waiting on it, mirroring how task failures surface through
  Dask futures.
* ``Interrupt`` support allows the work-stealing and fault-detection
  models to cancel in-flight waits.

Hot-path layout
---------------
The kernel is the innermost loop of every benchmark and repetition in
this repository, so the queue is split into lanes that together realise
the exact ``(time, priority, sequence)`` total order at a fraction of
the cost (see ``docs/performance.md``):

* one FIFO deque for zero-delay, priority-0 schedules (``succeed()`` /
  ``fail()`` / process completion — the bulk of all traffic);
* one FIFO deque for zero-delay, priority ``-1`` schedules
  (:class:`Initialize`, interrupts);
* a **timer wheel** (calendar queue) for positive-delay, priority-0
  timeouts — the clustered timestamps of heartbeats, poll intervals and
  compute/IO completions that used to dominate ``heappush``/``heappop``
  cost;
* a binary-heap **overflow lane** for everything the wheel does not
  take: exotic priorities, negative timestamps, far-future deadlines,
  and (when the wheel is disabled via ``wheel_width=0``) all timed
  events — the exact pre-wheel behaviour.

Because the clock never moves backwards and the sequence number only
grows, each deque is already sorted by the global key.  The wheel hashes
a timestamp to a bucket (``int(when * scale)``) — an order-preserving,
monotone quantisation — keeps a small heap of *active bucket indexes*,
and sorts one bucket at a time lazily when the drain cursor reaches it,
so schedule/pop is O(1) amortized for clustered timestamps.  A cached
``_timed_next`` deadline (always exact) lets ``peek()`` and the run
loops compare one float instead of scanning three containers.  All
event classes declare ``__slots__``, and the monitor-free ``run()``
loop is inlined with the lanes hoisted into locals.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "MonitorChain",
    "SimulationError",
    "WHEEL_WIDTH",
]


class SimulationError(RuntimeError):
    """Raised for structural errors in the simulation (e.g. deadlock)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event state markers.
PENDING = object()

_INF = float("inf")

#: Default timer-wheel bucket width, seconds.  Simulated control traffic
#: clusters on 10ms-to-1s grids (heartbeats, tick loops, control-plane
#: hops), so a 1/16 s bucket keeps the per-bucket sort small while
#: amortizing the bucket-index heap over many events.  Power-of-two
#: denominator so quantisation stays exact for grid-aligned floats.
WHEEL_WIDTH = 1.0 / 16.0

#: Timestamps at or beyond this bound bypass the wheel (the quantised
#: bucket index would overflow / lose all resolution); they take the
#: overflow heap instead, like any other sparse long-tail deadline.
_WHEEL_HORIZON = 1e15


class Event:
    """An occurrence at a point in simulated time.

    An event starts *untriggered*; once :meth:`succeed` or :meth:`fail`
    is called it is placed on the environment's queue and, when popped,
    its callbacks run.  Processes waiting on the event are resumed with
    the event's value (or have the failure exception thrown in).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure has been passed to a waiter (or defused).
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (success or failure)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined ``env._schedule(self, delay=0.0)``: the zero-delay,
        # priority-0 fast lane, minus a method call.
        env = self.env
        env._seq = seq = env._seq + 1
        env._fast0.append((env._now, 0, seq, self))
        if env.monitor is not None:
            env.monitor.on_schedule(self, env._now, 0, seq, env._now)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._seq = seq = env._seq + 1
        env._fast0.append((env._now, 0, seq, self))
        if env.monitor is not None:
            env.monitor.on_schedule(self, env._now, 0, seq, env._now)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so it does not crash the run."""
        self._defused = True

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        # Inlined ``Event.__init__`` (timeouts are the timed hot path).
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        env._seq = seq = env._seq + 1
        if delay > 0.0:
            when = env._now + delay
            # Inlined ``env._insert_timed`` for the wheel's common case:
            # a nonnegative, sub-horizon, priority-0 deadline.  Mirror of
            # the method — keep the two in sync.
            scale = env._wheel_scale
            if scale and _WHEEL_HORIZON > when >= 0.0:
                q = int(when * scale)
                if q == env._last_q:
                    env._last_append((when, 0, seq, self))
                else:
                    bucket = env._buckets.get(q)
                    if bucket is not None:
                        bucket.append((when, 0, seq, self))
                        env._last_q = q
                        env._last_append = bucket.append
                    elif (q == env._ready_q
                          and env._ready_pos < len(env._ready)):
                        insort(env._ready, (when, 0, seq, self),
                               env._ready_pos)
                    else:
                        bucket = [(when, 0, seq, self)]
                        env._buckets[q] = bucket
                        heappush(env._bucket_heap, q)
                        env._last_q = q
                        env._last_append = bucket.append
                        if q < env._ready_q and (
                                env._ready_pos < len(env._ready)):
                            # Earlier quantum than the live cursor:
                            # re-park it now, so the drain loop never
                            # has to test for this case.
                            env._reconcile_wheel()
            else:
                heappush(env._overflow, (when, 0, seq, self))
            if when < env._timed_next:
                env._timed_next = when
        elif delay == 0.0:
            env._fast0.append((env._now, 0, seq, self))
            when = env._now
        else:
            raise ValueError(f"negative delay {delay}")
        if env.monitor is not None:
            env.monitor.on_schedule(self, when, 0, seq, env._now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout({self.delay}) at {id(self):#x}>"


class Initialize(Event):
    """Internal event used to start a freshly created process.

    One ``Initialize`` can start *many* processes: each additional
    process appends its resume callback (see
    :meth:`Environment.process_batch`), so a batch of co-dispatched
    processes costs a single engine event instead of one per process.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume_cb)
        # Inlined ``env._schedule(self, delay=0.0, priority=-1)``.
        env._seq = seq = env._seq + 1
        env._fastneg.append((env._now, -1, seq, self))
        if env.monitor is not None:
            env.monitor.on_schedule(self, env._now, -1, seq, env._now)


class Process(Event):
    """A running generator; also an event that fires when it finishes."""

    __slots__ = ("_generator", "name", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator,
                 name: str = "", _defer_start: bool = False):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        #: The bound ``_resume`` method, created once — it is appended
        #: to a callback list on every wait, and binding it per yield
        #: would allocate a fresh method object each time.
        self._resume_cb = self._resume
        if not _defer_start:
            Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self.env._active_until:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume_cb)
        self.env._schedule(event, delay=0.0, priority=-1)
        # Detach from the old target: when the old event fires we must not
        # resume a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    result = generator.send(event._value)
                else:
                    event._defused = True
                    result = generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._seq = seq = env._seq + 1
                env._fast0.append((env._now, 0, seq, self))
                if env.monitor is not None:
                    env.monitor.on_schedule(self, env._now, 0, seq,
                                            env._now)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._seq = seq = env._seq + 1
                env._fast0.append((env._now, 0, seq, self))
                if env.monitor is not None:
                    env.monitor.on_schedule(self, env._now, 0, seq,
                                            env._now)
                break

            # ``result.callbacks`` doubles as the is-it-an-event check:
            # anything without the attribute was not a yieldable event.
            try:
                callbacks = result.callbacks
            except AttributeError:
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {result!r}"
                ) from None
            if callbacks is not None:
                # Not yet processed: wait for it.
                callbacks.append(self._resume_cb)
                self._target = result
                break
            # Already processed: continue immediately with its value.
            event = result
        env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r}>"


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_evaluate", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[list[Event], int], bool]):
        super().__init__(env)
        self.events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("events from different environments")
        if not self.events:
            self.succeed(self._collect())
            return
        check = self._check
        for event in self.events:
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

    def _collect(self) -> dict:
        return {
            event: event._value
            for event in self.events
            if event.triggered and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self.events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires once every component event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda events, count: count >= len(events))


class AnyOf(Condition):
    """Fires once any component event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda events, count: count >= 1)


class MonitorChain:
    """Composite engine observer: fans each hook out to its members.

    The :class:`Environment` holds a single ``monitor`` slot so the hot
    path stays one ``is None`` check.  When a second observer wants in
    (e.g. the event-ordering sanitizer *and* a telemetry sampler),
    :meth:`Environment.add_monitor` wraps both in a chain; members are
    called in attachment order.
    """

    def __init__(self, *monitors):
        self.monitors = list(monitors)

    def on_schedule(self, event, when, priority, seq, now) -> None:
        for monitor in self.monitors:
            monitor.on_schedule(event, when, priority, seq, now)

    def on_step(self, event, when, priority, seq) -> None:
        for monitor in self.monitors:
            monitor.on_step(event, when, priority, seq)

    def before_callback(self, event, callback) -> None:
        for monitor in self.monitors:
            monitor.before_callback(event, callback)


class Environment:
    """Execution environment: virtual clock plus the event queue.

    ``wheel_width`` sets the timer-wheel bucket width in simulated
    seconds (default :data:`WHEEL_WIDTH`); pass ``0`` to disable the
    wheel entirely, routing every timed event through the overflow
    binary heap — the pre-wheel kernel, kept as an ablation/fallback
    mode for the benchmarks and the differential tests.
    """

    __slots__ = ("_now", "_overflow", "_fast0", "_fastneg", "_seq",
                 "_active_process", "monitor",
                 "_buckets", "_bucket_heap", "_ready", "_ready_q",
                 "_ready_pos", "_wheel_scale",
                 "_timed_next", "_last_q", "_last_append")

    def __init__(self, initial_time: float = 0.0,
                 wheel_width: Optional[float] = None):
        self._now = float(initial_time)
        #: Zero-delay fast lanes; see the module docstring.  Each holds
        #: ``(when, priority, seq)``-sorted entries by construction
        #: (the clock never rewinds, ``seq`` only grows), so a FIFO
        #: deque replaces any priority structure for the dominant
        #: traffic.
        self._fast0: deque[tuple[float, int, int, Event]] = deque()
        self._fastneg: deque[tuple[float, int, int, Event]] = deque()
        # -- timed lane: timer wheel + overflow heap --------------------
        # Buckets keyed by the quantised timestamp ``int(when * scale)``
        # (monotone in ``when``, so bucket order is time order); only
        # *pending* quanta exist in the dict, and ``_bucket_heap`` is a
        # min-heap of exactly those keys.  The bucket the drain cursor
        # is parked on lives in ``_ready``, sorted ascending with
        # ``_ready_pos`` indexing its head — a pop is an index bump, and
        # a fresh schedule landing in the cursor's own quantum is a C
        # ``insort`` into the live tail.  The one case that invalidates
        # the cursor — a schedule creating a bucket *earlier* than the
        # cursor's quantum (only possible when the clock sits below the
        # active bucket's start) — re-parks it eagerly at insert time
        # via :meth:`_reconcile_wheel`, so the drain loop never checks
        # for it.  ``_ready`` / ``_bucket_heap`` / ``_overflow`` are
        # never rebound, so the inline run loop can hoist them into
        # locals.
        self._buckets: dict[int, list] = {}
        self._bucket_heap: list[int] = []
        self._ready: list[tuple[float, int, int, Event]] = []
        self._ready_q = 0
        self._ready_pos = 0
        #: Bound ``append`` of the last dict bucket appended to —
        #: clustered traffic lands in the same target bucket almost
        #: every schedule, so this skips both the dict probe and the
        #: method bind.  Invalidated when activation removes the bucket
        #: from the table (quanta are nonnegative, so -1 never
        #: matches).
        self._last_q = -1
        self._last_append: Optional[Callable[[tuple], None]] = None
        #: Overflow heap: exotic priorities, negative/huge timestamps,
        #: and every timed event when the wheel is disabled.
        self._overflow: list[tuple[float, int, int, Event]] = []
        if wheel_width is None:
            wheel_width = WHEEL_WIDTH
        if wheel_width < 0:
            raise ValueError(f"negative wheel_width {wheel_width}")
        self._wheel_scale = 1.0 / wheel_width if wheel_width else 0.0
        #: Cached next timed deadline: an exact *lower bound* on the
        #: earliest ``when`` across wheel + overflow (``inf`` only when
        #: the timed lane is empty).  Inserts lower it; pops are allowed
        #: to leave it stale-low, because a lower bound can only make
        #: the lane merge take its exact slow path (never pop out of
        #: order).  :meth:`_timed_head` refreshes it to the exact value,
        #: so ``peek()`` stays exact.
        self._timed_next = _INF
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Optional observer (e.g. the event-ordering sanitizer in
        #: :mod:`repro.analysis.sanitizer`).  When set, it receives
        #: ``on_schedule``/``on_step``/``before_callback`` calls; the
        #: hot path pays a single ``is None`` check otherwise.
        self.monitor: Optional[Any] = None

    # Target event of the currently executing process (used to detect
    # self-interrupts).
    @property
    def _active_until(self) -> Optional[Event]:
        proc = self._active_process
        return proc._target if proc is not None else None

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- monitors --------------------------------------------------------
    def add_monitor(self, monitor: Any) -> Any:
        """Attach an engine observer, composing with any existing one.

        The first observer occupies the ``monitor`` slot directly; a
        second promotes the slot to a :class:`MonitorChain`.  Returns
        ``monitor`` for chaining.
        """
        if self.monitor is None:
            self.monitor = monitor
        elif isinstance(self.monitor, MonitorChain):
            self.monitor.monitors.append(monitor)
        else:
            self.monitor = MonitorChain(self.monitor, monitor)
        return monitor

    def remove_monitor(self, monitor: Any) -> None:
        """Detach one observer added via :meth:`add_monitor`.

        Collapses a single-member chain back to the bare observer;
        removing an observer that is not attached raises ``ValueError``.
        """
        if self.monitor is monitor:
            self.monitor = None
            return
        if isinstance(self.monitor, MonitorChain):
            self.monitor.monitors.remove(monitor)
            if len(self.monitor.monitors) == 1:
                self.monitor = self.monitor.monitors[0]
            return
        raise ValueError(f"monitor {monitor!r} is not attached")

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def process_batch(self, generators: Iterable,
                      name: str = "") -> list[Process]:
        """Spawn many processes started by **one** engine event.

        ``generators`` yields either bare generators or ``(generator,
        name)`` pairs.  The first process's :class:`Initialize` event
        carries the resume callbacks of the whole batch, so the batch
        costs one ``(now, -1, seq)`` queue entry instead of one per
        process; the processes still start in iteration order, exactly
        as consecutive per-process ``Initialize`` events would have
        fired (nothing can schedule between two adjacent same-key
        events).  This is the engine half of the batched worker
        dispatch: one event per worker drain, not one per task.
        """
        procs: list[Process] = []
        starter: Optional[Initialize] = None
        for item in generators:
            if type(item) is tuple:
                generator, proc_name = item
            else:
                generator, proc_name = item, name
            proc = Process(self, generator, name=proc_name,
                           _defer_start=True)
            if starter is None:
                starter = Initialize(self, proc)
            else:
                starter.callbacks.append(proc._resume_cb)
            procs.append(proc)
        return procs

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 0) -> None:
        self._seq = seq = self._seq + 1
        now = self._now
        if delay == 0.0:
            # Zero-delay fast lanes: appending keeps each deque sorted
            # by the global (when, priority, seq) key, so these events
            # never pay heappush/heappop.
            if priority == 0:
                self._fast0.append((now, 0, seq, event))
            elif priority == -1:
                self._fastneg.append((now, -1, seq, event))
            else:
                self._insert_timed((now, priority, seq, event))
            when = now
        else:
            when = now + delay
            self._insert_timed((when, priority, seq, event))
        if self.monitor is not None:
            self.monitor.on_schedule(event, when, priority, seq, now)

    def _insert_timed(self, entry: tuple) -> None:
        """File one entry into the timed lane (wheel or overflow).

        The wheel takes nonnegative, sub-horizon, priority-0 deadlines —
        the clustered traffic it exists for; everything else (exotic
        priorities, time travel produced by negative clocks, the sparse
        far-future tail, or *all* timed entries when the wheel is
        disabled) goes to the overflow heap.  Both structures feed the
        same exact-order merge, so the split is pure routing.
        """
        when = entry[0]
        scale = self._wheel_scale
        if scale and entry[1] == 0 and _WHEEL_HORIZON > when >= 0.0:
            q = int(when * scale)
            if q == self._last_q:
                self._last_append(entry)
            else:
                bucket = self._buckets.get(q)
                if bucket is not None:
                    bucket.append(entry)
                    self._last_q = q
                    self._last_append = bucket.append
                elif (q == self._ready_q
                      and self._ready_pos < len(self._ready)):
                    # Lands in the bucket currently being drained:
                    # insort into the live tail keeps the cursor valid.
                    insort(self._ready, entry, self._ready_pos)
                else:
                    bucket = [entry]
                    self._buckets[q] = bucket
                    heappush(self._bucket_heap, q)
                    self._last_q = q
                    self._last_append = bucket.append
                    if q < self._ready_q and (
                            self._ready_pos < len(self._ready)):
                        # Earlier quantum than the live cursor: re-park
                        # it now (see the :class:`Timeout` mirror).
                        self._reconcile_wheel()
        else:
            heappush(self._overflow, entry)
        if when < self._timed_next:
            self._timed_next = when

    # -- timed-lane drain ------------------------------------------------
    def _activate_bucket(self) -> None:
        """Park the drain cursor on the earliest pending bucket.

        Requires an exhausted cursor and a non-empty bucket heap.  Pops
        the minimum quantum and sorts its entries into ``_ready``
        (ascending; ``_ready_pos`` rewinds to 0).  Amortized O(1) per
        event for clustered timestamps: every bucket is sorted exactly
        once per activation, and same-time entries arrive in ``seq``
        order, so the sort sees one pre-sorted run.
        """
        q = heappop(self._bucket_heap)
        bucket = self._buckets.pop(q)
        if q == self._last_q:
            # The cached append target just left the table.
            self._last_q = -1
            self._last_append = None
        bucket.sort()
        ready = self._ready
        ready[:] = bucket
        self._ready_pos = 0
        self._ready_q = q

    def _reconcile_wheel(self) -> None:
        """Re-park the cursor after an earlier-quantum insertion.

        Called eagerly by the insert paths when a schedule creates a
        bucket earlier than the live cursor's quantum.  The live
        remainder of the cursor is stashed back into the bucket table,
        then the true minimum bucket is activated.  Each entry is
        stashed at most once per earlier-quantum insertion — which
        itself requires the clock to sit below the active bucket's
        start — so the amortized bound survives.
        """
        ready = self._ready
        pos = self._ready_pos
        if pos < len(ready):
            q = self._ready_q
            bucket = self._buckets.get(q)
            if bucket is None:
                self._buckets[q] = ready[pos:]
                heappush(self._bucket_heap, q)
            else:
                bucket.extend(ready[pos:])
        del ready[:]
        self._ready_pos = 0
        self._activate_bucket()

    def _wheel_head(self) -> Optional[tuple]:
        """The wheel's minimal entry (not removed), or ``None``."""
        ready = self._ready
        pos = self._ready_pos
        if pos < len(ready):
            return ready[pos]
        if not self._bucket_heap:
            return None
        self._activate_bucket()
        return ready[0]

    def _timed_head(self) -> Optional[tuple]:
        """The timed lane's minimal entry (not removed), or ``None``.

        Also refreshes the cached ``_timed_next`` lower bound to the
        exact head deadline (``inf`` when the lane is empty).
        """
        head = self._wheel_head()
        overflow = self._overflow
        if overflow and (head is None or overflow[0] < head):
            head = overflow[0]
        self._timed_next = head[0] if head is not None else _INF
        return head

    def _pop_timed(self) -> tuple:
        """Remove and return the timed lane's minimal entry.

        The caller guarantees the timed lane is non-empty.  Refreshes
        the cached ``_timed_next`` deadline so it is exact on return.
        """
        head = self._wheel_head()
        overflow = self._overflow
        if head is None or (overflow and overflow[0] < head):
            entry = heappop(overflow)
        else:
            # Null the drained slot: the dead prefix must not pin
            # popped events alive (at 10k-entry buckets that defeats
            # allocator reuse and costs ~2x in drain throughput).
            pos = self._ready_pos
            self._ready[pos] = None
            self._ready_pos = pos + 1
            entry = head
        head = self._wheel_head()
        if overflow and (head is None or overflow[0] < head):
            self._timed_next = overflow[0][0]
        elif head is not None:
            self._timed_next = head[0]
        else:
            # Timed lane drained: drop the cursor's dead prefix so it
            # does not pin popped events alive.
            del self._ready[:]
            self._ready_pos = 0
            self._timed_next = _INF
        return entry

    def _pop_next(self) -> Optional[tuple[float, int, int, Event]]:
        """Remove and return the globally next entry, or ``None``.

        Merges the lane heads by their ``(when, priority, seq)`` prefix
        — ``seq`` is unique, so the comparison never reaches the event
        object.  The cached ``_timed_next`` deadline short-circuits the
        common case (a fast-lane event strictly earlier than any timed
        deadline) without touching the wheel at all.
        """
        fastneg = self._fastneg
        fast0 = self._fast0
        if fastneg:
            cand = fastneg
            if fast0 and fast0[0] < fastneg[0]:
                cand = fast0
        elif fast0:
            cand = fast0
        else:
            cand = None
        if cand is not None:
            head = cand[0]
            if head[0] < self._timed_next:
                # Strictly earlier than the timed lower bound: exact.
                return cand.popleft()
            timed = self._timed_head()
            if timed is None or head < timed:
                return cand.popleft()
            return self._pop_timed()
        if self._timed_head() is not None:
            return self._pop_timed()
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none.

        One comparison per lane: :meth:`_timed_head` refreshes the
        cached ``_timed_next`` deadline to its exact value, so no
        container scan happens here.
        """
        self._timed_head()
        best = self._timed_next
        fastneg = self._fastneg
        if fastneg and fastneg[0][0] < best:
            best = fastneg[0][0]
        fast0 = self._fast0
        if fast0 and fast0[0][0] < best:
            best = fast0[0][0]
        return best

    @property
    def has_events(self) -> bool:
        """Whether any event is still scheduled."""
        return bool(self._fast0 or self._fastneg or self._overflow
                    or self._bucket_heap
                    or self._ready_pos < len(self._ready))

    def _pending(self) -> bool:
        return bool(self._fast0 or self._fastneg or self._overflow
                    or self._bucket_heap
                    or self._ready_pos < len(self._ready))

    def step(self) -> None:
        """Process the next scheduled event."""
        entry = self._pop_next()
        if entry is None:
            raise SimulationError("no scheduled events")
        when, prio, seq, event = entry
        self._now = when
        monitor = self.monitor
        if monitor is not None:
            monitor.on_step(event, when, prio, seq)
        callbacks, event.callbacks = event.callbacks, None
        if monitor is None:
            for callback in callbacks:
                callback(event)
        else:
            for callback in callbacks:
                monitor.before_callback(event, callback)
                callback(event)
        if event._ok is False and not event._defused:
            # An unhandled failure terminates the simulation loudly, like
            # an uncaught exception in a real run.
            raise event._value

    def _run_inline(self, stop: Optional[Event]) -> None:
        """Monitor-free hot loop: lane merge + callback dispatch inlined.

        Behaviourally identical to calling :meth:`step` until ``stop``
        is processed (or forever when ``stop`` is ``None``), but with
        the lanes hoisted into locals so the common case does no
        per-event attribute lookups.  ``_ready``/``_bucket_heap``/
        ``_overflow`` are never rebound, so their hoisted references
        stay valid across wheel maintenance; the timed pop is inlined
        for the two dominant cases (live wheel cursor with an empty
        overflow heap; pure-overflow traffic, i.e. the heap-fallback
        mode) and falls back to :meth:`_pop_timed` otherwise.  The
        wheel-cursor pop is bounds-checked by the subscript itself
        (``IndexError`` → activate the next bucket or stop), and it
        does *not* maintain the cached ``_timed_next`` deadline — pops
        only ever leave the cache stale-low, which the lane merge and
        ``peek()`` tolerate by design.  Only entered when ``monitor is
        None``; a monitor attached mid-run takes effect from the next
        ``run()``/``step()`` call.
        """
        fast0 = self._fast0
        fastneg = self._fastneg
        ready = self._ready
        bheap = self._bucket_heap
        overflow = self._overflow
        while True:
            if stop is not None and stop.callbacks is None:
                return
            if fastneg or fast0:
                if not fastneg:
                    cand = fast0
                elif fast0 and fast0[0] < fastneg[0]:
                    cand = fast0
                else:
                    cand = fastneg
                head = cand[0]
                if head[0] < self._timed_next:
                    # Strictly earlier than the timed lane's cached
                    # lower bound: the fast-lane head wins exactly.
                    best = cand.popleft()
                else:
                    pos = self._ready_pos
                    if not overflow and pos < len(ready):
                        # Live wheel cursor: compare the two heads
                        # directly — same-time traffic (a draining
                        # bucket interleaved with zero-delay completions
                        # at the bucket's own timestamp) stays on this
                        # path for its whole run, so it must not pay a
                        # method call per event.
                        timed = ready[pos]
                        if head < timed:
                            best = cand.popleft()
                            # Exact refresh re-arms the strict fast
                            # compare above.
                            self._timed_next = timed[0]
                        else:
                            best = timed
                            ready[pos] = None
                            self._ready_pos = pos + 1
                    else:
                        # ``_timed_head`` refreshes the cache, so one
                        # slow merge re-arms the fast compare above.
                        timed = self._timed_head()
                        if timed is None or head < timed:
                            best = cand.popleft()
                        else:
                            best = self._pop_timed()
            elif not overflow:
                # Wheel-only: a pop is one subscript plus an index
                # bump.  The subscript doubles as the bounds check —
                # ``IndexError`` means the cursor is exhausted (or the
                # wheel is empty).  The drained slot is nulled so the
                # dead prefix never pins popped events alive (pinning
                # 10k-entry buckets defeats allocator reuse, ~2x drain
                # cost).
                pos = self._ready_pos
                try:
                    best = ready[pos]
                except IndexError:
                    if bheap:
                        self._activate_bucket()
                        best = ready[0]
                        ready[0] = None
                        self._ready_pos = 1
                    elif stop is None:
                        return
                    else:
                        raise SimulationError(
                            f"deadlock: event {stop!r} will never fire"
                        ) from None
                else:
                    ready[pos] = None
                    self._ready_pos = pos + 1
            elif bheap or self._ready_pos < len(ready):
                best = self._pop_timed()
            else:
                # Overflow-only (heap-fallback mode / pure long tail):
                # the classic heap pop, inlined.  Re-arm the deadline
                # cache exactly — one subscript here saves the fast
                # lanes a ``_timed_head()`` call per merge while the
                # heap stays the active lane.
                best = heappop(overflow)
                self._timed_next = overflow[0][0] if overflow else _INF
            event = best[3]
            self._now = best[0]
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if event._ok is False and not event._defused:
                # An unhandled failure terminates the simulation loudly,
                # like an uncaught exception in a real run.
                raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        * ``until is None`` — run until no events remain.
        * ``until`` is a number — run until the clock reaches it.
        * ``until`` is an :class:`Event` — run until it fires and return
          its value (raising if it failed).
        """
        if until is None:
            if self.monitor is None:
                self._run_inline(None)
            else:
                while self._pending():
                    self.step()
            return None
        if isinstance(until, Event):
            stop = until
            if self.monitor is None:
                self._run_inline(stop)
            else:
                while not stop.processed:
                    if not self._pending():
                        raise SimulationError(
                            f"deadlock: event {stop!r} will never fire"
                        )
                    self.step()
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while self.peek() <= horizon:
            self.step()
        self._now = horizon
        return None
