"""Discrete-event simulation kernel.

This module implements a small, self-contained discrete-event simulation
engine in the style of SimPy: *processes* are Python generators that
``yield`` :class:`Event` objects, and an :class:`Environment` advances a
virtual clock by popping scheduled events off a binary heap.

Every substrate in this repository (the Dask-like workflow management
system, the network and parallel-file-system models, the Mofka event
streaming service) runs on top of this kernel, which gives the whole
reproduction a single, deterministic notion of time.  Timestamps recorded
by the instrumentation layers are engine timestamps, exactly as the paper
correlates wall-clock timestamps across Darshan and Dask logs.

Design notes
------------
* Events are scheduled with a ``(time, priority, sequence)`` key; the
  monotonically increasing sequence number guarantees FIFO ordering of
  simultaneous events, which keeps runs bit-reproducible for a fixed
  seed.
* A process that raises is marked *failed*; the exception propagates to
  any process waiting on it, mirroring how task failures surface through
  Dask futures.
* ``Interrupt`` support allows the work-stealing and fault-detection
  models to cancel in-flight waits.

Hot-path layout
---------------
The kernel is the innermost loop of every benchmark and repetition in
this repository, so the queue is split into three lanes that together
realise the exact ``(time, priority, sequence)`` heap order at a
fraction of the cost (see ``docs/performance.md``):

* a binary heap for positive-delay timeouts and exotic priorities;
* one FIFO deque for zero-delay, priority-0 schedules (``succeed()`` /
  ``fail()`` / process completion — the bulk of all traffic);
* one FIFO deque for zero-delay, priority ``-1`` schedules
  (:class:`Initialize`, interrupts).

Because the clock never moves backwards and the sequence number only
grows, each deque is already sorted by the global key; ``step`` merges
the three lane heads with two tuple comparisons instead of paying
``heappush``/``heappop`` per event.  All event classes declare
``__slots__``, and the monitor-free ``run()`` loop is inlined with the
lanes hoisted into locals.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "MonitorChain",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for structural errors in the simulation (e.g. deadlock)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event state markers.
PENDING = object()


class Event:
    """An occurrence at a point in simulated time.

    An event starts *untriggered*; once :meth:`succeed` or :meth:`fail`
    is called it is placed on the environment's queue and, when popped,
    its callbacks run.  Processes waiting on the event are resumed with
    the event's value (or have the failure exception thrown in).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure has been passed to a waiter (or defused).
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (success or failure)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined ``env._schedule(self, delay=0.0)``: the zero-delay,
        # priority-0 fast lane, minus a method call.
        env = self.env
        env._seq = seq = env._seq + 1
        env._fast0.append((env._now, 0, seq, self))
        if env.monitor is not None:
            env.monitor.on_schedule(self, env._now, 0, seq, env._now)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._seq = seq = env._seq + 1
        env._fast0.append((env._now, 0, seq, self))
        if env.monitor is not None:
            env.monitor.on_schedule(self, env._now, 0, seq, env._now)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so it does not crash the run."""
        self._defused = True

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined ``Event.__init__`` (timeouts are the heap's hot path).
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        # Inlined ``env._schedule(self, delay=delay)``.
        env._seq = seq = env._seq + 1
        if delay == 0.0:
            env._fast0.append((env._now, 0, seq, self))
            when = env._now
        else:
            when = env._now + delay
            heappush(env._queue, (when, 0, seq, self))
        if env.monitor is not None:
            env.monitor.on_schedule(self, when, 0, seq, env._now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout({self.delay}) at {id(self):#x}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume_cb)
        # Inlined ``env._schedule(self, delay=0.0, priority=-1)``.
        env._seq = seq = env._seq + 1
        env._fastneg.append((env._now, -1, seq, self))
        if env.monitor is not None:
            env.monitor.on_schedule(self, env._now, -1, seq, env._now)


class Process(Event):
    """A running generator; also an event that fires when it finishes."""

    __slots__ = ("_generator", "name", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        #: The bound ``_resume`` method, created once — it is appended
        #: to a callback list on every wait, and binding it per yield
        #: would allocate a fresh method object each time.
        self._resume_cb = self._resume
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self.env._active_until:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume_cb)
        self.env._schedule(event, delay=0.0, priority=-1)
        # Detach from the old target: when the old event fires we must not
        # resume a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        generator = self._generator
        send = generator.send
        while True:
            try:
                if event._ok:
                    result = send(event._value)
                else:
                    event._defused = True
                    result = generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._seq = seq = env._seq + 1
                env._fast0.append((env._now, 0, seq, self))
                if env.monitor is not None:
                    env.monitor.on_schedule(self, env._now, 0, seq,
                                            env._now)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._seq = seq = env._seq + 1
                env._fast0.append((env._now, 0, seq, self))
                if env.monitor is not None:
                    env.monitor.on_schedule(self, env._now, 0, seq,
                                            env._now)
                break

            # ``result.callbacks`` doubles as the is-it-an-event check:
            # anything without the attribute was not a yieldable event.
            try:
                callbacks = result.callbacks
            except AttributeError:
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {result!r}"
                ) from None
            if callbacks is not None:
                # Not yet processed: wait for it.
                callbacks.append(self._resume_cb)
                self._target = result
                break
            # Already processed: continue immediately with its value.
            event = result
        env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r}>"


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_evaluate", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[list[Event], int], bool]):
        super().__init__(env)
        self.events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("events from different environments")
        if not self.events:
            self.succeed(self._collect())
            return
        check = self._check
        for event in self.events:
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

    def _collect(self) -> dict:
        return {
            event: event._value
            for event in self.events
            if event.triggered and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self.events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires once every component event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda events, count: count >= len(events))


class AnyOf(Condition):
    """Fires once any component event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda events, count: count >= 1)


class MonitorChain:
    """Composite engine observer: fans each hook out to its members.

    The :class:`Environment` holds a single ``monitor`` slot so the hot
    path stays one ``is None`` check.  When a second observer wants in
    (e.g. the event-ordering sanitizer *and* a telemetry sampler),
    :meth:`Environment.add_monitor` wraps both in a chain; members are
    called in attachment order.
    """

    def __init__(self, *monitors):
        self.monitors = list(monitors)

    def on_schedule(self, event, when, priority, seq, now) -> None:
        for monitor in self.monitors:
            monitor.on_schedule(event, when, priority, seq, now)

    def on_step(self, event, when, priority, seq) -> None:
        for monitor in self.monitors:
            monitor.on_step(event, when, priority, seq)

    def before_callback(self, event, callback) -> None:
        for monitor in self.monitors:
            monitor.before_callback(event, callback)


class Environment:
    """Execution environment: virtual clock plus the event queue."""

    __slots__ = ("_now", "_queue", "_fast0", "_fastneg", "_seq",
                 "_active_process", "monitor")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        #: Binary heap: positive-delay timeouts and exotic priorities.
        self._queue: list[tuple[float, int, int, Event]] = []
        #: Zero-delay fast lanes; see the module docstring.  Each holds
        #: ``(when, priority, seq)``-sorted entries by construction
        #: (the clock never rewinds, ``seq`` only grows), so a FIFO
        #: deque replaces the heap for the dominant traffic.
        self._fast0: deque[tuple[float, int, int, Event]] = deque()
        self._fastneg: deque[tuple[float, int, int, Event]] = deque()
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Optional observer (e.g. the event-ordering sanitizer in
        #: :mod:`repro.analysis.sanitizer`).  When set, it receives
        #: ``on_schedule``/``on_step``/``before_callback`` calls; the
        #: hot path pays a single ``is None`` check otherwise.
        self.monitor: Optional[Any] = None

    # Target event of the currently executing process (used to detect
    # self-interrupts).
    @property
    def _active_until(self) -> Optional[Event]:
        proc = self._active_process
        return proc._target if proc is not None else None

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- monitors --------------------------------------------------------
    def add_monitor(self, monitor: Any) -> Any:
        """Attach an engine observer, composing with any existing one.

        The first observer occupies the ``monitor`` slot directly; a
        second promotes the slot to a :class:`MonitorChain`.  Returns
        ``monitor`` for chaining.
        """
        if self.monitor is None:
            self.monitor = monitor
        elif isinstance(self.monitor, MonitorChain):
            self.monitor.monitors.append(monitor)
        else:
            self.monitor = MonitorChain(self.monitor, monitor)
        return monitor

    def remove_monitor(self, monitor: Any) -> None:
        """Detach one observer added via :meth:`add_monitor`.

        Collapses a single-member chain back to the bare observer;
        removing an observer that is not attached raises ``ValueError``.
        """
        if self.monitor is monitor:
            self.monitor = None
            return
        if isinstance(self.monitor, MonitorChain):
            self.monitor.monitors.remove(monitor)
            if len(self.monitor.monitors) == 1:
                self.monitor = self.monitor.monitors[0]
            return
        raise ValueError(f"monitor {monitor!r} is not attached")

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 0) -> None:
        self._seq = seq = self._seq + 1
        now = self._now
        if delay == 0.0:
            # Zero-delay fast lanes: appending keeps each deque sorted
            # by the global (when, priority, seq) key, so these events
            # never pay heappush/heappop.
            if priority == 0:
                self._fast0.append((now, 0, seq, event))
            elif priority == -1:
                self._fastneg.append((now, -1, seq, event))
            else:
                heappush(self._queue, (now, priority, seq, event))
            when = now
        else:
            when = now + delay
            heappush(self._queue, (when, priority, seq, event))
        if self.monitor is not None:
            self.monitor.on_schedule(event, when, priority, seq, now)

    def _pop_next(self) -> Optional[tuple[float, int, int, Event]]:
        """Remove and return the globally next entry, or ``None``.

        Merges the three lane heads by their ``(when, priority, seq)``
        prefix — ``seq`` is unique, so the comparison never reaches the
        event object.
        """
        queue = self._queue
        fast0 = self._fast0
        fastneg = self._fastneg
        if fastneg:
            cand = fastneg
            if fast0 and fast0[0] < fastneg[0]:
                cand = fast0
        elif fast0:
            cand = fast0
        else:
            cand = None
        if queue:
            if cand is None or queue[0] < cand[0]:
                return heappop(queue)
            return cand.popleft()
        if cand is None:
            return None
        return cand.popleft()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        best = float("inf")
        if self._queue:
            best = self._queue[0][0]
        if self._fast0 and self._fast0[0][0] < best:
            best = self._fast0[0][0]
        if self._fastneg and self._fastneg[0][0] < best:
            best = self._fastneg[0][0]
        return best

    def _pending(self) -> bool:
        return bool(self._queue or self._fast0 or self._fastneg)

    def step(self) -> None:
        """Process the next scheduled event."""
        entry = self._pop_next()
        if entry is None:
            raise SimulationError("no scheduled events")
        when, prio, seq, event = entry
        self._now = when
        monitor = self.monitor
        if monitor is not None:
            monitor.on_step(event, when, prio, seq)
        callbacks, event.callbacks = event.callbacks, None
        if monitor is None:
            for callback in callbacks:
                callback(event)
        else:
            for callback in callbacks:
                monitor.before_callback(event, callback)
                callback(event)
        if event._ok is False and not event._defused:
            # An unhandled failure terminates the simulation loudly, like
            # an uncaught exception in a real run.
            raise event._value

    def _run_inline(self, stop: Optional[Event]) -> None:
        """Monitor-free hot loop: lane merge + callback dispatch inlined.

        Behaviourally identical to calling :meth:`step` until ``stop``
        is processed (or forever when ``stop`` is ``None``), but with
        the lanes hoisted into locals so the common case does no
        per-event attribute lookups.  Only entered when ``monitor is
        None``; a monitor attached mid-run takes effect from the next
        ``run()``/``step()`` call.
        """
        queue = self._queue
        fast0 = self._fast0
        fastneg = self._fastneg
        pop = heappop
        if stop is None:
            while True:
                if fastneg:
                    cand = fastneg
                    if fast0 and fast0[0] < fastneg[0]:
                        cand = fast0
                elif fast0:
                    cand = fast0
                else:
                    cand = None
                if queue:
                    if cand is None or queue[0] < cand[0]:
                        best = pop(queue)
                    else:
                        best = cand.popleft()
                elif cand is None:
                    return
                else:
                    best = cand.popleft()
                event = best[3]
                self._now = best[0]
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    # An unhandled failure terminates the simulation
                    # loudly, like an uncaught exception in a real run.
                    raise event._value
            return
        while stop.callbacks is not None:
            if fastneg:
                cand = fastneg
                if fast0 and fast0[0] < fastneg[0]:
                    cand = fast0
            elif fast0:
                cand = fast0
            else:
                cand = None
            if queue:
                if cand is None or queue[0] < cand[0]:
                    best = pop(queue)
                else:
                    best = cand.popleft()
            elif cand is None:
                raise SimulationError(
                    f"deadlock: event {stop!r} will never fire"
                )
            else:
                best = cand.popleft()
            event = best[3]
            self._now = best[0]
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if event._ok is False and not event._defused:
                # An unhandled failure terminates the simulation loudly,
                # like an uncaught exception in a real run.
                raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        * ``until is None`` — run until no events remain.
        * ``until`` is a number — run until the clock reaches it.
        * ``until`` is an :class:`Event` — run until it fires and return
          its value (raising if it failed).
        """
        if until is None:
            if self.monitor is None:
                self._run_inline(None)
            else:
                while self._pending():
                    self.step()
            return None
        if isinstance(until, Event):
            stop = until
            if self.monitor is None:
                self._run_inline(stop)
            else:
                while not stop.processed:
                    if not self._pending():
                        raise SimulationError(
                            f"deadlock: event {stop!r} will never fire"
                        )
                    self.step()
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while self.peek() <= horizon:
            self.step()
        self._now = horizon
        return None
