"""Discrete-event simulation kernel.

This module implements a small, self-contained discrete-event simulation
engine in the style of SimPy: *processes* are Python generators that
``yield`` :class:`Event` objects, and an :class:`Environment` advances a
virtual clock by popping scheduled events off a binary heap.

Every substrate in this repository (the Dask-like workflow management
system, the network and parallel-file-system models, the Mofka event
streaming service) runs on top of this kernel, which gives the whole
reproduction a single, deterministic notion of time.  Timestamps recorded
by the instrumentation layers are engine timestamps, exactly as the paper
correlates wall-clock timestamps across Darshan and Dask logs.

Design notes
------------
* Events are scheduled with a ``(time, priority, sequence)`` key; the
  monotonically increasing sequence number guarantees FIFO ordering of
  simultaneous events, which keeps runs bit-reproducible for a fixed
  seed.
* A process that raises is marked *failed*; the exception propagates to
  any process waiting on it, mirroring how task failures surface through
  Dask futures.
* ``Interrupt`` support allows the work-stealing and fault-detection
  models to cancel in-flight waits.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "MonitorChain",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for structural errors in the simulation (e.g. deadlock)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event state markers.
PENDING = object()


class Event:
    """An occurrence at a point in simulated time.

    An event starts *untriggered*; once :meth:`succeed` or :meth:`fail`
    is called it is placed on the environment's queue and, when popped,
    its callbacks run.  Processes waiting on the event are resumed with
    the event's value (or have the failure exception thrown in).
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure has been passed to a waiter (or defused).
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (success or failure)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=0.0)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so it does not crash the run."""
        self._defused = True

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout({self.delay}) at {id(self):#x}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, delay=0.0, priority=-1)


class Process(Event):
    """A running generator; also an event that fires when it finishes."""

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self.env._active_until:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, delay=0.0, priority=-1)
        # Detach from the old target: when the old event fires we must not
        # resume a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    result = self._generator.send(event._value)
                else:
                    event._defused = True
                    result = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, delay=0.0)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env._schedule(self, delay=0.0)
                break

            if not isinstance(result, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {result!r}"
                )
            if result.callbacks is not None:
                # Not yet processed: wait for it.
                result.callbacks.append(self._resume)
                self._target = result
                break
            # Already processed: continue immediately with its value.
            event = result
        self.env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r}>"


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[list[Event], int], bool]):
        super().__init__(env)
        self.events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("events from different environments")
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            event: event._value
            for event in self.events
            if event.triggered and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self.events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires once every component event has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda events, count: count >= len(events))


class AnyOf(Condition):
    """Fires once any component event has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda events, count: count >= 1)


class MonitorChain:
    """Composite engine observer: fans each hook out to its members.

    The :class:`Environment` holds a single ``monitor`` slot so the hot
    path stays one ``is None`` check.  When a second observer wants in
    (e.g. the event-ordering sanitizer *and* a telemetry sampler),
    :meth:`Environment.add_monitor` wraps both in a chain; members are
    called in attachment order.
    """

    def __init__(self, *monitors):
        self.monitors = list(monitors)

    def on_schedule(self, event, when, priority, seq, now) -> None:
        for monitor in self.monitors:
            monitor.on_schedule(event, when, priority, seq, now)

    def on_step(self, event, when, priority, seq) -> None:
        for monitor in self.monitors:
            monitor.on_step(event, when, priority, seq)

    def before_callback(self, event, callback) -> None:
        for monitor in self.monitors:
            monitor.before_callback(event, callback)


class Environment:
    """Execution environment: virtual clock plus the event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Optional observer (e.g. the event-ordering sanitizer in
        #: :mod:`repro.analysis.sanitizer`).  When set, it receives
        #: ``on_schedule``/``on_step``/``before_callback`` calls; the
        #: hot path pays a single ``is None`` check otherwise.
        self.monitor: Optional[Any] = None

    # Target event of the currently executing process (used to detect
    # self-interrupts).
    @property
    def _active_until(self) -> Optional[Event]:
        proc = self._active_process
        return proc._target if proc is not None else None

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- monitors --------------------------------------------------------
    def add_monitor(self, monitor: Any) -> Any:
        """Attach an engine observer, composing with any existing one.

        The first observer occupies the ``monitor`` slot directly; a
        second promotes the slot to a :class:`MonitorChain`.  Returns
        ``monitor`` for chaining.
        """
        if self.monitor is None:
            self.monitor = monitor
        elif isinstance(self.monitor, MonitorChain):
            self.monitor.monitors.append(monitor)
        else:
            self.monitor = MonitorChain(self.monitor, monitor)
        return monitor

    def remove_monitor(self, monitor: Any) -> None:
        """Detach one observer added via :meth:`add_monitor`.

        Collapses a single-member chain back to the bare observer;
        removing an observer that is not attached raises ``ValueError``.
        """
        if self.monitor is monitor:
            self.monitor = None
            return
        if isinstance(self.monitor, MonitorChain):
            self.monitor.monitors.remove(monitor)
            if len(self.monitor.monitors) == 1:
                self.monitor = self.monitor.monitors[0]
            return
        raise ValueError(f"monitor {monitor!r} is not attached")

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 0) -> None:
        self._seq += 1
        when = self._now + delay
        heapq.heappush(self._queue, (when, priority, self._seq, event))
        if self.monitor is not None:
            self.monitor.on_schedule(event, when, priority, self._seq,
                                     self._now)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, prio, seq, event = heapq.heappop(self._queue)
        self._now = when
        monitor = self.monitor
        if monitor is not None:
            monitor.on_step(event, when, prio, seq)
        callbacks, event.callbacks = event.callbacks, None
        if monitor is None:
            for callback in callbacks:
                callback(event)
        else:
            for callback in callbacks:
                monitor.before_callback(event, callback)
                callback(event)
        if event._ok is False and not event._defused:
            # An unhandled failure terminates the simulation loudly, like
            # an uncaught exception in a real run.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        * ``until is None`` — run until no events remain.
        * ``until`` is a number — run until the clock reaches it.
        * ``until`` is an :class:`Event` — run until it fires and return
          its value (raising if it failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        f"deadlock: event {stop!r} will never fire"
                    )
                self.step()
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
