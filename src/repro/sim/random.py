"""Named, reproducible random-number streams.

Performance variability is the object of study in the reproduced paper,
so the simulator must produce *controlled* randomness: each stochastic
component (network jitter, PFS interference, task duration noise, GC
timing, ...) draws from its own independently seeded stream, derived
deterministically from a root seed and a stream name.  Re-running with
the same root seed reproduces a run exactly; changing only the
repetition index re-seeds every stream coherently, modelling the
run-to-run variability the paper measures.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams", "stable_seed"]


def stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed from arbitrary parts, stable across processes.

    Python's builtin ``hash`` is salted per process; we need a value that
    is identical for identical inputs on every run, so we hash the string
    rendering of the parts with BLAKE2.
    """
    digest = hashlib.blake2b(
        "\x1f".join(str(p) for p in parts).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RandomStreams:
    """Factory of independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    root_seed:
        Seed shared by the whole simulation run.
    run_index:
        Repetition number; folded into every stream so that repetition
        *k* of an experiment differs from repetition *k+1* in all noise
        sources at once, as distinct physical runs would.
    """

    def __init__(self, root_seed: int = 0, run_index: int = 0):
        self.root_seed = int(root_seed)
        self.run_index = int(run_index)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            seed = stable_seed(self.root_seed, self.run_index, name)
            gen = np.random.default_rng(seed)
            self._streams[name] = gen
        return gen

    def fixed_stream(self, name: str) -> np.random.Generator:
        """A generator independent of ``run_index``.

        Use for quantities that must be identical across repetitions of
        an experiment — above all dataset contents: the paper reruns the
        same workflow on the same data; only the platform noise and
        scheduling change between runs.
        """
        key = f"fixed::{name}"
        gen = self._streams.get(key)
        if gen is None:
            seed = stable_seed(self.root_seed, "fixed", name)
            gen = np.random.default_rng(seed)
            self._streams[key] = gen
        return gen

    # Convenience draws -------------------------------------------------
    def lognormal_factor(self, name: str, sigma: float) -> float:
        """A multiplicative noise factor with median 1.0.

        Log-normal noise is the conventional model for HPC performance
        jitter: strictly positive, right-skewed (occasional stragglers).
        """
        if sigma <= 0:
            return 1.0
        return float(np.exp(self.stream(name).normal(0.0, sigma)))

    def exponential(self, name: str, mean: float) -> float:
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        return float(self.stream(name).uniform(low, high))

    def integers(self, name: str, low: int, high: int) -> int:
        return int(self.stream(name).integers(low, high))

    def choice(self, name: str, options):
        options = list(options)
        return options[self.integers(name, 0, len(options))]
