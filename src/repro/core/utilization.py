"""Worker/thread utilization timelines.

A companion to the Fig.-4 thread view: how busy the allocation actually
was, over time and per worker.  Low utilization with a long wall time
is the signature of the coordination overhead the paper blames for the
"disproportionately long total time" of its short workflows (§IV-C).
"""

from __future__ import annotations

import numpy as np

from .table import Table

__all__ = ["utilization_timeline", "worker_utilization",
           "overall_utilization"]


def utilization_timeline(tasks: Table, n_threads_total: int,
                         bucket: float = 1.0) -> Table:
    """Fraction of executor threads busy per time bucket.

    Columns: bucket_start, busy_thread_seconds, utilization.
    """
    if len(tasks) == 0:
        return Table({"bucket_start": [], "busy_thread_seconds": [],
                      "utilization": []})
    starts = tasks["start"].astype(float)
    stops = tasks["stop"].astype(float)
    horizon = float(stops.max())
    n_buckets = int(np.ceil(horizon / bucket)) or 1
    busy = np.zeros(n_buckets)
    for s, e in zip(starts, stops):
        first = int(s // bucket)
        last = int(min(e, horizon - 1e-12) // bucket)
        for b in range(first, last + 1):
            lo = max(s, b * bucket)
            hi = min(e, (b + 1) * bucket)
            if hi > lo:
                busy[b] += hi - lo
    capacity = n_threads_total * bucket
    return Table({
        "bucket_start": np.arange(n_buckets) * bucket,
        "busy_thread_seconds": busy,
        "utilization": busy / capacity,
    })


def worker_utilization(tasks: Table, threads_per_worker: int) -> Table:
    """Busy fraction per worker over its active span.

    Columns: worker, n_tasks, busy_seconds, span, utilization.
    """
    rows = []
    for worker, sub in tasks.groupby("worker").items():
        starts = sub["start"].astype(float)
        stops = sub["stop"].astype(float)
        busy = float(np.sum(stops - starts))
        span = float(stops.max() - starts.min()) or 1e-12
        rows.append({
            "worker": worker,
            "n_tasks": len(sub),
            "busy_seconds": busy,
            "span": span,
            "utilization": busy / (span * threads_per_worker),
        })
    table = Table.from_records(rows, columns=[
        "worker", "n_tasks", "busy_seconds", "span", "utilization",
    ])
    return table.sort_by("utilization", descending=True)


def overall_utilization(tasks: Table, n_threads_total: int,
                        wall_time: float) -> float:
    """Busy thread-seconds over available thread-seconds."""
    if len(tasks) == 0 or wall_time <= 0:
        return 0.0
    busy = float(np.sum(tasks["stop"].astype(float)
                        - tasks["start"].astype(float)))
    return busy / (n_threads_total * wall_time)
