"""FAIR interoperability checks over the collected views.

The paper's lessons-learned section (§V) stresses that aggregated
multisource data is only interoperable if every pair of sources shares
"at least one common identifier".  This module makes that requirement
executable: a registry declares which identifier columns each view
carries, and :func:`check_interoperability` verifies that every pair
of views is joinable through some shared identifier — exactly the
property the paper had to engineer by adding pthread IDs and
timestamps to both Darshan and Dask records.
"""

from __future__ import annotations

from .table import Table

__all__ = ["IDENTIFIER_REGISTRY", "shared_identifiers",
           "check_interoperability", "identifier_coverage"]

#: Identifier columns by view name.  ``thread_id`` and ``pthread_id``
#: are aliases of the same physical identifier (Dask-side vs
#: Darshan-side naming), as are worker/src_worker/dst_worker.
IDENTIFIER_REGISTRY: dict[str, set[str]] = {
    "task": {"key", "worker", "hostname", "thread", "timestamp"},
    "transition": {"key", "worker", "timestamp"},
    "io": {"hostname", "thread", "timestamp"},
    "comm": {"key", "worker", "hostname", "timestamp"},
    "warning": {"worker", "hostname", "timestamp"},
    "dependency": {"key", "timestamp"},
    "log": {"worker", "timestamp"},
}

#: Physical column names that realise each abstract identifier.
IDENTIFIER_COLUMNS: dict[str, set[str]] = {
    "key": {"key"},
    "worker": {"worker", "src_worker", "dst_worker", "source", "victim",
               "thief"},
    "hostname": {"hostname", "src_host", "dst_host"},
    "thread": {"thread_id", "pthread_id"},
    "timestamp": {"timestamp", "time", "start", "stop", "end",
                  "submitted_at", "bucket_start"},
}


def shared_identifiers(view_a: str, view_b: str) -> set[str]:
    """Abstract identifiers common to two registered views."""
    try:
        ids_a = IDENTIFIER_REGISTRY[view_a]
        ids_b = IDENTIFIER_REGISTRY[view_b]
    except KeyError as exc:
        raise KeyError(f"unregistered view {exc.args[0]!r}") from None
    return ids_a & ids_b


def check_interoperability(views: list[str] | None = None) -> list[dict]:
    """Verify every view pair shares a non-timestamp identifier or, at
    minimum, timestamps.

    Returns one row per pair: {pair, shared, joinable, strong} where
    ``strong`` means the pair shares an entity identifier (not just
    time alignment).
    """
    names = sorted(views or IDENTIFIER_REGISTRY)
    rows = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            shared = shared_identifiers(names[i], names[j])
            rows.append({
                "pair": (names[i], names[j]),
                "shared": sorted(shared),
                "joinable": bool(shared),
                "strong": bool(shared - {"timestamp"}),
            })
    return rows


def identifier_coverage(view: Table, view_name: str) -> dict:
    """Which declared identifiers does a concrete table actually carry?

    Returns {identifier: bool}; a False value flags a metadata-collection
    gap of the kind research question 4 asks about.
    """
    declared = IDENTIFIER_REGISTRY.get(view_name)
    if declared is None:
        raise KeyError(f"unregistered view {view_name!r}")
    columns = set(view.column_names)
    out = {}
    for identifier in sorted(declared):
        physical = IDENTIFIER_COLUMNS[identifier]
        out[identifier] = bool(physical & columns)
    return out
