"""Per-task provenance assembly (the Fig.-8 analysis).

"Thanks to our multisource data collection, correlation, and analysis,
we are able to construct a full lineage of every task in the workflow"
(§IV-E).  :func:`task_provenance` joins, for one key, everything the
sources know: submission record with dependencies and graph index,
every captured state transition with location and timestamp, the
execution record (worker, pthread ID, start/end, output size), the
data movements of its output between workers, and the high-fidelity
I/O records fused onto it by thread + time.
"""

from __future__ import annotations

import numpy as np

from .correlate import fuse_io_with_tasks
from .session import AnalysisSession
from .table import Table

__all__ = ["task_provenance", "render_provenance"]


def _rows_for_key(table: Table, key: str, column: str = "key") -> list[dict]:
    if len(table) == 0:
        return []
    mask = np.asarray([v == key for v in table[column]], dtype=bool)
    return table.filter(mask).to_records()


def task_provenance(run, key: str,
                    pfs_name: str = "lustre0") -> dict:
    """The full lineage document of one task (Fig.-8 structure)."""
    session = AnalysisSession.of(run)
    deps = _rows_for_key(session.dependency_view(), key)
    transitions = _rows_for_key(session.transition_view(), key)
    tasks = session.task_view()
    runs = _rows_for_key(tasks, key)
    comms = _rows_for_key(session.comm_view(), key)
    fused = session.cached("fused_io", lambda: fuse_io_with_tasks(
        tasks, session.io_view()))
    io_rows = _rows_for_key(fused, key)

    if not deps and not transitions and not runs:
        raise KeyError(f"no provenance recorded for key {key!r}")

    submission = deps[0] if deps else {}
    execution = runs[0] if runs else {}
    document = {
        "key": key,
        "group": submission.get("group") or execution.get("group"),
        "prefix": submission.get("prefix") or execution.get("prefix"),
        "task_graph_index": submission.get(
            "graph_index", execution.get("graph_index")),
        "dependencies": list(submission.get("deps", [])),
        "states": [
            {
                "from": t["start_state"], "to": t["finish_state"],
                "timestamp": t["timestamp"], "stimulus": t["stimulus"],
                "location": t["worker"] or t["source"],
                "recorded_by": t["source"],
            }
            for t in sorted(transitions, key=lambda t: t["timestamp"])
        ],
        "execution": {
            "worker": execution.get("worker"),
            "hostname": execution.get("hostname"),
            "thread_id": execution.get("thread_id"),
            "start": execution.get("start"),
            "stop": execution.get("stop"),
            "output_nbytes": execution.get("output_nbytes"),
        } if execution else None,
        "data_movements": [
            {
                "from": c["src_worker"], "to": c["dst_worker"],
                "nbytes": c["nbytes"], "start": c["start"],
                "stop": c["stop"], "same_node": c["same_node"],
            }
            for c in comms
        ],
        "locations": sorted(
            {execution.get("worker")} if execution else set()
        ) + sorted({c["dst_worker"] for c in comms}),
        "io_records": [
            {
                "pfs": pfs_name, "file": r["file"], "op": r["op"],
                "offset": r["offset"], "length": r["length"],
                "start": r["start"], "end": r["end"],
            }
            for r in io_rows
        ],
    }
    return document


def render_provenance(document: dict, max_items: int = 6) -> str:
    """Human-readable tree rendering of a lineage document."""
    lines = [f"task {document['key']}"]
    lines.append(f"├─ group: {document['group']}")
    lines.append(f"├─ prefix: {document['prefix']}")
    lines.append(f"├─ task graph: {document['task_graph_index']}")
    deps = document["dependencies"]
    lines.append(f"├─ dependencies ({len(deps)}):")
    for dep in deps[:max_items]:
        lines.append(f"│    {dep}")
    if len(deps) > max_items:
        lines.append(f"│    ... {len(deps) - max_items} more")
    lines.append(f"├─ states ({len(document['states'])}):")
    for state in document["states"]:
        lines.append(
            f"│    {state['from']} -> {state['to']} "
            f"@ {state['timestamp']:.6f} [{state['stimulus']}] "
            f"on {state['location']}"
        )
    execution = document["execution"]
    if execution:
        lines.append("├─ execution:")
        lines.append(f"│    worker: {execution['worker']} "
                     f"({execution['hostname']})")
        lines.append(f"│    thread: {execution['thread_id']}")
        lines.append(f"│    window: [{execution['start']:.6f}, "
                     f"{execution['stop']:.6f}]")
        lines.append(f"│    output: {execution['output_nbytes']} bytes")
    moves = document["data_movements"]
    lines.append(f"├─ data movements ({len(moves)}):")
    for move in moves[:max_items]:
        lines.append(f"│    {move['from']} -> {move['to']} "
                     f"({move['nbytes']} B)")
    io_records = document["io_records"]
    lines.append(f"└─ I/O records ({len(io_records)}):")
    for record in io_records[:max_items]:
        lines.append(
            f"     {record['pfs']}:{record['file']} {record['op']} "
            f"off={record['offset']} len={record['length']} "
            f"[{record['start']:.6f}, {record['end']:.6f}]"
        )
    if len(io_records) > max_items:
        lines.append(f"     ... {len(io_records) - max_items} more")
    return "\n".join(lines)
