"""I/O hotspot and I/O-reproducibility analysis across runs.

The paper singles out I/O as "a prominent source of performance
variability at scale" (§III-C) and asks for reproducibility to be
measured "at a low level ... instead of aggregate statistics" (§II).
Two instruments for that:

* :func:`io_hotspots` — per-file I/O time statistics across repeated
  runs: which *files* carry the most time and which vary the most
  (the storage-side analogue of the per-category duration tables).
* :func:`heatmap_similarity` — pairwise cosine similarity of the runs'
  job-level HEATMAP profiles: a single score for "did the I/O unfold
  the same way over time?", robust to small timing shifts via optional
  bin coarsening.
"""

from __future__ import annotations

import numpy as np

from .table import Table

__all__ = ["io_hotspots", "heatmap_similarity"]


def io_hotspots(io_views: list[Table], top: int = 20) -> Table:
    """Per-file I/O time across runs, ranked by cross-run variability.

    Input: one I/O view per run.  Output columns: file, n_runs,
    mean_ops, mean_io_time, std_io_time, cv, mean_bytes — sorted by
    descending cv, then mean_io_time.
    """
    per_file: dict[str, dict] = {}
    for view in io_views:
        totals: dict[str, list] = {}
        for i in range(len(view)):
            path = view["file"][i]
            record = totals.setdefault(path, [0, 0.0, 0])
            record[0] += 1
            record[1] += float(view["duration"][i])
            record[2] += int(view["length"][i])
        for path, (ops, io_time, nbytes) in totals.items():
            slot = per_file.setdefault(path, {
                "ops": [], "times": [], "bytes": [],
            })
            slot["ops"].append(ops)
            slot["times"].append(io_time)
            slot["bytes"].append(nbytes)
    rows = []
    for path, slot in per_file.items():
        times = np.asarray(slot["times"], dtype=float)
        mean_time = float(times.mean())
        std_time = float(times.std(ddof=1)) if len(times) > 1 else 0.0
        rows.append({
            "file": path,
            "n_runs": len(times),
            "mean_ops": float(np.mean(slot["ops"])),
            "mean_io_time": mean_time,
            "std_io_time": std_time,
            "cv": std_time / mean_time if mean_time else 0.0,
            "mean_bytes": float(np.mean(slot["bytes"])),
        })
    table = Table.from_records(rows, columns=[
        "file", "n_runs", "mean_ops", "mean_io_time", "std_io_time",
        "cv", "mean_bytes",
    ])
    order = np.lexsort((
        -table["mean_io_time"].astype(float),
        -table["cv"].astype(float),
    )) if len(table) else np.array([], dtype=int)
    return table.take(order).head(top)


def _profile(heatmap, coarsen: int) -> np.ndarray:
    values = np.asarray(heatmap.read_bytes, dtype=float) \
        + np.asarray(heatmap.write_bytes, dtype=float)
    if coarsen > 1:
        usable = (len(values) // coarsen) * coarsen
        values = values[:usable].reshape(-1, coarsen).sum(axis=1)
    return values


def heatmap_similarity(heatmaps: list, coarsen: int = 1) -> Table:
    """Pairwise cosine similarity of job I/O-intensity profiles.

    1.0 means two runs distributed their I/O over time identically;
    values drop as bursts shift or resize between runs.  ``coarsen``
    merges that many adjacent bins first, forgiving sub-bin jitter.
    Heatmaps must share ``nbins``; differing bin widths are tolerated
    (profiles are compared positionally, as fractions of each run).
    """
    if len(heatmaps) < 2:
        raise ValueError("need at least two heatmaps")
    if coarsen < 1:
        raise ValueError("coarsen must be >= 1")
    profiles = [_profile(h, coarsen) for h in heatmaps]
    size = min(len(p) for p in profiles)
    rows = []
    for i in range(len(profiles)):
        for j in range(i + 1, len(profiles)):
            a, b = profiles[i][:size], profiles[j][:size]
            denom = float(np.linalg.norm(a) * np.linalg.norm(b))
            similarity = float(a @ b) / denom if denom > 0 else 0.0
            rows.append({
                "run_a": i, "run_b": j,
                "similarity": similarity,
            })
    return Table.from_records(rows,
                              columns=["run_a", "run_b", "similarity"])
