"""Cross-run variability statistics.

The paper's stated goal is to "determine which tasks, task behaviors,
and system characteristics are responsible for the largest variations
during multiple executions of the same set of codes in the same
configurations" (§I).  This module provides the aggregate layer: given
per-run metric values it computes the mean/std/extremes/CV that drive
the Fig.-3 error bars, and per-prefix duration variability tables that
point at the task categories behind the spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from .phases import PhaseBreakdown
from .session import AnalysisSession, map_sessions, sessions_for
from .table import Table

__all__ = ["MetricStats", "summarize_metric", "phase_variability",
           "prefix_duration_variability", "variability_report"]


@dataclass(frozen=True)
class MetricStats:
    """Distribution summary of one metric over repeated runs."""

    name: str
    n: int
    mean: float
    std: float
    min: float
    max: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (std/mean); 0 when mean is 0."""
        return self.std / self.mean if self.mean else 0.0

    @property
    def spread(self) -> float:
        """Max-min range."""
        return self.max - self.min

    def as_dict(self) -> dict:
        return {
            "metric": self.name, "n": self.n, "mean": self.mean,
            "std": self.std, "min": self.min, "max": self.max,
            "cv": self.cv,
        }


def summarize_metric(name: str, values: Sequence[float]) -> MetricStats:
    """Distribution summary (n/mean/std/min/max) of one metric."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError(f"no values for metric {name}")
    return MetricStats(
        name=name, n=int(arr.size), mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()), max=float(arr.max()),
    )


def phase_variability(breakdowns: Iterable[PhaseBreakdown]) -> dict:
    """Fig.-3 series: per-phase stats over repetitions of one workflow.

    Returns ``{phase: MetricStats}`` for the raw durations plus
    ``normalized`` entries giving each phase's mean fraction of the
    mean wall time (the y-axis normalisation of Fig. 3).
    """
    breakdowns = list(breakdowns)
    if not breakdowns:
        raise ValueError("no runs")
    out: dict = {}
    for phase in ("io", "communication", "computation", "total"):
        values = [getattr(b, phase) for b in breakdowns]
        out[phase] = summarize_metric(phase, values)
    mean_total = out["total"].mean or 1.0
    out["normalized"] = {
        phase: out[phase].mean / mean_total
        for phase in ("io", "communication", "computation", "total")
    }
    out["normalized_err"] = {
        phase: out[phase].std / mean_total
        for phase in ("io", "communication", "computation", "total")
    }
    return out


def prefix_duration_variability(task_views: Iterable[Table]) -> Table:
    """Which task categories vary the most across runs?

    Input: one task view per run.  Output columns: prefix, n_runs,
    mean_total_duration, std_total_duration, cv — sorted by descending
    CV so the largest contributors to irreproducibility lead.
    """
    per_run_totals: dict[str, list[float]] = {}
    views = list(task_views)
    for view in views:
        groups = view.groupby("prefix")
        for prefix, sub in groups.items():
            per_run_totals.setdefault(prefix, []).append(
                float(np.sum(sub["duration"]))
            )
    rows = []
    for prefix, totals in per_run_totals.items():
        stats = summarize_metric(prefix, totals)
        rows.append({
            "prefix": prefix, "n_runs": stats.n,
            "mean_total_duration": stats.mean,
            "std_total_duration": stats.std, "cv": stats.cv,
        })
    table = Table.from_records(rows, columns=[
        "prefix", "n_runs", "mean_total_duration", "std_total_duration",
        "cv",
    ])
    return table.sort_by("cv", descending=True)


def variability_report(sources: Sequence,
                       workers: Optional[int] = None) -> dict:
    """One-call cross-run variability study over many runs.

    ``sources`` may be run-directory paths, ``RunData``/``RunResult``
    objects, or sessions; with ``workers > 1`` the per-run loading and
    view building fan out over a thread pool (results stay in input
    order, so the statistics are deterministic).  Returns::

        {"sessions":   [AnalysisSession, ...],
         "phases":     phase_variability(...) output,
         "by_prefix":  prefix_duration_variability(...) Table}
    """
    sessions = sessions_for(sources, workers=workers)
    breakdowns = map_sessions(AnalysisSession.phase_breakdown, sessions,
                              workers=workers)
    views = [session.task_view() for session in sessions]
    return {
        "sessions": sessions,
        "phases": phase_variability(breakdowns),
        "by_prefix": prefix_duration_variability(views),
    }
