"""Warning-distribution analysis (the Fig.-7 analysis).

"We also collect warnings from the Dask scheduler and worker logs
regarding the responsiveness of worker's event loop and garbage
collection events.  We hypothesize that these warnings may be
correlated with the slowdown of the Dask system and running tasks"
(§IV-D3).  :func:`warning_histogram` produces the Fig.-7 bars;
:func:`correlate_warnings_with_tasks` tests the paper's hypothesis by
counting warnings inside the execution windows of the longest task
category.
"""

from __future__ import annotations

import numpy as np

from .table import Table

__all__ = ["warning_histogram", "warnings_in_window",
           "correlate_warnings_with_tasks"]


def warning_histogram(warnings: Table, bucket: float = 100.0) -> Table:
    """Counts of each warning kind per time bucket.

    Columns: bucket_start, kind, count.
    """
    if len(warnings) == 0:
        return Table({"bucket_start": [], "kind": [], "count": []})
    times = warnings["time"].astype(float)
    kinds = warnings["kind"]
    buckets = np.floor(times / bucket) * bucket
    rows: dict = {}
    for b, kind in zip(buckets, kinds):
        rows[(float(b), kind)] = rows.get((float(b), kind), 0) + 1
    records = [
        {"bucket_start": b, "kind": kind, "count": count}
        for (b, kind), count in sorted(rows.items())
    ]
    return Table.from_records(records,
                              columns=["bucket_start", "kind", "count"])


def warnings_in_window(warnings: Table, start: float, end: float,
                       kind: str | None = None) -> int:
    """Number of warnings with ``start <= time < end`` (optionally one kind)."""
    if len(warnings) == 0:
        return 0
    times = warnings["time"].astype(float)
    mask = (times >= start) & (times < end)
    if kind is not None:
        mask &= np.asarray(
            [k == kind for k in warnings["kind"]], dtype=bool
        )
    return int(mask.sum())


def correlate_warnings_with_tasks(warnings: Table, tasks: Table,
                                  category: str,
                                  kind: str = "unresponsive_event_loop"
                                  ) -> dict:
    """Warning density inside vs outside a task category's active span.

    Returns the in-span and out-of-span warning rates (warnings per
    second) and their ratio; a ratio well above 1 supports the paper's
    observation that unresponsive-loop warnings "correlate perfectly
    with the long-running read_parquet-fused-assign tasks".
    """
    cat_mask = np.asarray(
        [p == category for p in tasks["prefix"]], dtype=bool
    )
    cat = tasks.filter(cat_mask)
    if len(cat) == 0 or len(warnings) == 0:
        return {"category": category, "in_rate": 0.0, "out_rate": 0.0,
                "ratio": 0.0, "n_in": 0, "n_out": 0}
    span_start = float(np.min(cat["start"]))
    span_end = float(np.max(cat["stop"]))
    total_start = float(min(np.min(tasks["start"]),
                            np.min(warnings["time"].astype(float))))
    total_end = float(max(np.max(tasks["stop"]),
                          np.max(warnings["time"].astype(float))))
    n_in = warnings_in_window(warnings, span_start, span_end, kind)
    kind_mask = np.asarray([k == kind for k in warnings["kind"]], dtype=bool)
    n_kind = int(kind_mask.sum())
    n_out = n_kind - n_in
    in_span = max(span_end - span_start, 1e-9)
    out_span = max((total_end - total_start) - in_span, 1e-9)
    in_rate = n_in / in_span
    out_rate = n_out / out_span
    return {
        "category": category, "kind": kind,
        "span": (span_start, span_end),
        "n_in": n_in, "n_out": n_out,
        "in_rate": in_rate, "out_rate": out_rate,
        "ratio": in_rate / out_rate if out_rate > 0 else float("inf"),
    }
