"""Per-category (task-type) analysis, within one run and across runs.

The paper lists "task category (type) analysis within one or multiple
runs (performance, variability, distribution, I/O per task, and so
[on])" among the analyses its framework supports (§IV-D).  This module
provides them: duration distributions per prefix, I/O attribution per
prefix (via the thread+timestamp fusion), and cross-run per-category
variability.
"""

from __future__ import annotations

import numpy as np

from .correlate import fuse_io_with_tasks, per_task_io
from .table import Table

__all__ = ["category_profile", "category_io_profile",
           "category_across_runs"]


def _percentile(values: np.ndarray, q: float) -> float:
    return float(np.percentile(values, q)) if len(values) else 0.0


def category_profile(tasks: Table) -> Table:
    """Duration/size distribution per task prefix within one run.

    Columns: category, n, total_duration, mean, p50, p95, max,
    mean_output_mb, n_workers, n_threads.
    """
    rows = []
    for prefix, sub in tasks.groupby("prefix").items():
        durations = sub["duration"].astype(float)
        rows.append({
            "category": prefix,
            "n": len(sub),
            "total_duration": float(durations.sum()),
            "mean": float(durations.mean()),
            "p50": _percentile(durations, 50),
            "p95": _percentile(durations, 95),
            "max": float(durations.max()),
            "mean_output_mb": float(
                sub["output_nbytes"].astype(float).mean()) / 2**20,
            "n_workers": len(set(sub["worker"])),
            "n_threads": len({
                (sub["hostname"][i], sub["thread_id"][i])
                for i in range(len(sub))
            }),
        })
    table = Table.from_records(rows, columns=[
        "category", "n", "total_duration", "mean", "p50", "p95", "max",
        "mean_output_mb", "n_workers", "n_threads",
    ])
    return table.sort_by("total_duration", descending=True)


def category_io_profile(tasks: Table, io: Table) -> Table:
    """I/O behaviour per task category (fused via thread + timestamps).

    Columns: category, n_tasks_with_io, io_ops, bytes_read,
    bytes_written, io_time, ops_per_task.
    """
    fused = fuse_io_with_tasks(tasks, io)
    per_task = per_task_io(fused)
    if len(per_task) == 0:
        return Table({c: [] for c in (
            "category", "n_tasks_with_io", "io_ops", "bytes_read",
            "bytes_written", "io_time", "ops_per_task",
        )})
    joined = per_task.join(tasks.select(["key", "prefix"]), on=["key"])
    rows = []
    for prefix, sub in joined.groupby("prefix").items():
        n_tasks = len(sub)
        ops = int(np.sum(sub["n_ops"]))
        rows.append({
            "category": prefix,
            "n_tasks_with_io": n_tasks,
            "io_ops": ops,
            "bytes_read": int(np.sum(sub["bytes_read"])),
            "bytes_written": int(np.sum(sub["bytes_written"])),
            "io_time": float(np.sum(sub["io_time"].astype(float))),
            "ops_per_task": ops / n_tasks if n_tasks else 0.0,
        })
    table = Table.from_records(rows, columns=[
        "category", "n_tasks_with_io", "io_ops", "bytes_read",
        "bytes_written", "io_time", "ops_per_task",
    ])
    return table.sort_by("io_time", descending=True)


def category_across_runs(task_views: list[Table]) -> Table:
    """Cross-run per-category statistics.

    Columns: category, n_runs, mean_count, mean_total_duration,
    duration_cv (of per-run totals), placement_spread (mean number of
    distinct workers used per run).
    """
    per_category: dict[str, dict] = {}
    for view in task_views:
        for prefix, sub in view.groupby("prefix").items():
            record = per_category.setdefault(prefix, {
                "counts": [], "totals": [], "workers": [],
            })
            record["counts"].append(len(sub))
            record["totals"].append(
                float(np.sum(sub["duration"].astype(float))))
            record["workers"].append(len(set(sub["worker"])))
    rows = []
    for prefix, record in per_category.items():
        totals = np.asarray(record["totals"])
        mean_total = float(totals.mean())
        std_total = float(totals.std(ddof=1)) if len(totals) > 1 else 0.0
        rows.append({
            "category": prefix,
            "n_runs": len(totals),
            "mean_count": float(np.mean(record["counts"])),
            "mean_total_duration": mean_total,
            "duration_cv": std_total / mean_total if mean_total else 0.0,
            "placement_spread": float(np.mean(record["workers"])),
        })
    table = Table.from_records(rows, columns=[
        "category", "n_runs", "mean_count", "mean_total_duration",
        "duration_cv", "placement_spread",
    ])
    return table.sort_by("duration_cv", descending=True)
