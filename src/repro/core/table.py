"""The common tabular format of PERFRECUP.

The paper stores "the data and metadata in a unique tabular format,
with at least one common identifier between every two different data
sources" (§V).  The original implementation builds on pandas; pandas is
not available in this environment, so :class:`Table` provides the
NumPy-backed columnar subset PERFRECUP needs: construction from record
dicts, boolean filtering, sorting, column math, group-by aggregation,
and equi-joins.  Columns are NumPy arrays (object dtype for strings),
so filtering and arithmetic stay vectorised.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

__all__ = ["Table"]


def _as_column(values) -> np.ndarray:
    if isinstance(values, np.ndarray):
        arr = values
    else:
        values = list(values)
        # Container-valued cells (e.g. dependency lists) must become an
        # object column; np.asarray would reject ragged shapes.
        if any(isinstance(v, (list, tuple, dict, set)) for v in values):
            arr = np.empty(len(values), dtype=object)
            for i, v in enumerate(values):
                arr[i] = v
        else:
            arr = np.asarray(values)
    if arr.dtype.kind in ("U", "S"):
        arr = arr.astype(object)
    return arr


class Table:
    """An immutable-ish columnar table."""

    def __init__(self, columns: Optional[dict] = None):
        self._columns: dict[str, np.ndarray] = {}
        length = None
        for name, values in (columns or {}).items():
            arr = _as_column(values)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D")
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise ValueError(
                    f"column {name!r} has length {len(arr)}, expected {length}"
                )
            self._columns[name] = arr
        self._length = length or 0

    # -- construction ------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[dict],
                     columns: Optional[Sequence[str]] = None) -> "Table":
        records = list(records)
        if not records:
            return cls({name: [] for name in (columns or [])})
        names = list(columns) if columns is not None else list(records[0])
        return cls({
            name: [record.get(name) for record in records] for name in names
        })

    # -- basics ---------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; have {self.column_names}"
            ) from None

    def to_records(self) -> list[dict]:
        names = self.column_names
        return [
            {name: self._columns[name][i] for name in names}
            for i in range(self._length)
        ]

    def row(self, index: int) -> dict:
        return {name: col[index] for name, col in self._columns.items()}

    # -- transformation --------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Table":
        return Table({name: self._columns[name] for name in names})

    def with_column(self, name: str, values) -> "Table":
        arr = _as_column(values)
        if len(arr) != self._length:
            raise ValueError("column length mismatch")
        columns = dict(self._columns)
        columns[name] = arr
        return Table(columns)

    def filter(self, mask) -> "Table":
        """Rows where ``mask`` (boolean array or row predicate) holds."""
        if callable(mask):
            mask = np.fromiter(
                (bool(mask(self.row(i))) for i in range(self._length)),
                dtype=bool, count=self._length,
            )
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._length:
            raise ValueError("mask length mismatch")
        return Table({n: c[mask] for n, c in self._columns.items()})

    def take(self, indices) -> "Table":
        indices = np.asarray(indices, dtype=np.intp)
        return Table({n: c[indices] for n, c in self._columns.items()})

    def head(self, n: int = 5) -> "Table":
        return self.take(np.arange(min(n, self._length)))

    def sort_by(self, name: str, descending: bool = False) -> "Table":
        order = np.argsort(self._columns[name], kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    def concat(self, other: "Table") -> "Table":
        if set(self.column_names) != set(other.column_names):
            raise ValueError("column sets differ")
        return Table({
            name: np.concatenate([self._columns[name], other[name]])
            for name in self.column_names
        })

    # -- aggregation ----------------------------------------------------------
    def unique(self, name: str) -> np.ndarray:
        return np.unique(self._columns[name].astype(object))

    def groupby(self, by: str) -> dict:
        """Mapping of group value → sub-Table (stable row order)."""
        groups: dict = {}
        col = self._columns[by]
        index_lists: dict = {}
        for i in range(self._length):
            index_lists.setdefault(col[i], []).append(i)
        for value, indices in index_lists.items():
            groups[value] = self.take(indices)
        return groups

    def aggregate(self, by: str, agg: dict[str, Callable]) -> "Table":
        """Group by ``by`` and reduce named columns.

        ``agg`` maps output column → (source column, reducer) or a
        reducer applied to the same-named column.
        """
        groups = self.groupby(by)
        out: dict[str, list] = {by: []}
        for name in agg:
            out[name] = []
        for value, sub in groups.items():
            out[by].append(value)
            for name, spec in agg.items():
                if isinstance(spec, tuple):
                    source, func = spec
                else:
                    source, func = name, spec
                out[name].append(func(sub[source]))
        return Table(out)

    # -- joins -------------------------------------------------------------------
    def join(self, other: "Table", on: Sequence[str],
             how: str = "inner", suffix: str = "_r") -> "Table":
        """Hash equi-join on the ``on`` columns.

        ``how`` is ``inner`` or ``left``; right-side name collisions get
        ``suffix``.  A left row joining no right row yields ``None`` in
        the right columns (left join only).
        """
        if how not in ("inner", "left"):
            raise ValueError("how must be 'inner' or 'left'")
        on = list(on)
        right_index: dict = {}
        for j in range(len(other)):
            key = tuple(other[c][j] for c in on)
            right_index.setdefault(key, []).append(j)

        right_cols = [c for c in other.column_names if c not in on]
        out_names = self.column_names + [
            c + suffix if c in self._columns else c for c in right_cols
        ]
        out: dict[str, list] = {name: [] for name in out_names}
        for i in range(self._length):
            key = tuple(self._columns[c][i] for c in on)
            matches = right_index.get(key, [])
            if not matches and how == "left":
                for name in self.column_names:
                    out[name].append(self._columns[name][i])
                for c in right_cols:
                    out[c + suffix if c in self._columns else c].append(None)
                continue
            for j in matches:
                for name in self.column_names:
                    out[name].append(self._columns[name][i])
                for c in right_cols:
                    out[c + suffix if c in self._columns else c].append(
                        other[c][j]
                    )
        return Table(out)

    # -- description -----------------------------------------------------------
    def describe_column(self, name: str) -> dict:
        col = self._columns[name]
        if col.dtype.kind in ("i", "u", "f"):
            values = col.astype(float)
            return {
                "count": int(len(values)),
                "mean": float(values.mean()) if len(values) else float("nan"),
                "std": float(values.std()) if len(values) else float("nan"),
                "min": float(values.min()) if len(values) else float("nan"),
                "max": float(values.max()) if len(values) else float("nan"),
            }
        uniques, counts = np.unique(col.astype(str), return_counts=True)
        top = int(np.argmax(counts)) if len(counts) else -1
        return {
            "count": int(len(col)),
            "unique": int(len(uniques)),
            "top": uniques[top] if top >= 0 else None,
            "top_count": int(counts[top]) if top >= 0 else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Table {self._length} rows x {len(self._columns)} cols>"
