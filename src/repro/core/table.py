"""The common tabular format of PERFRECUP.

The paper stores "the data and metadata in a unique tabular format,
with at least one common identifier between every two different data
sources" (§V).  The original implementation builds on pandas; pandas is
not available in this environment, so :class:`Table` provides the
NumPy-backed columnar subset PERFRECUP needs: construction from record
dicts, boolean filtering, sorting, column math, group-by aggregation,
and equi-joins.  Columns are NumPy arrays (object dtype for strings),
so filtering and arithmetic stay vectorised.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

__all__ = ["Table", "as_column"]


def _object_column(values: list) -> np.ndarray:
    # Element-wise fill: container-valued cells (e.g. dependency lists)
    # must stay one cell each; np.asarray would reject ragged shapes or
    # broadcast same-length ones into a 2-D array.
    arr = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        arr[i] = v
    return arr


def as_column(values) -> np.ndarray:
    if isinstance(values, np.ndarray):
        arr = values
        if arr.dtype.kind in ("U", "S"):
            arr = arr.astype(object)
        return arr
    values = list(values)
    if values:
        first = values[0]
        # Hot-path sniff on the first cell: string columns go straight
        # to object dtype (skipping NumPy's unicode intermediate plus a
        # second astype copy) and container columns go element-wise.
        if isinstance(first, str):
            return np.array(values, dtype=object)
        if isinstance(first, (list, tuple, dict, set)):
            return _object_column(values)
    try:
        arr = np.asarray(values)
    except ValueError:
        # Ragged/mixed content that numpy refuses to stack.
        return _object_column(values)
    if arr.ndim != 1:
        return _object_column(values)
    if arr.dtype.kind in ("U", "S"):
        arr = arr.astype(object)
    return arr


class Table:
    """An immutable-ish columnar table."""

    def __init__(self, columns: Optional[dict] = None):
        self._columns: dict[str, np.ndarray] = {}
        length = None
        for name, values in (columns or {}).items():
            arr = as_column(values)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D")
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise ValueError(
                    f"column {name!r} has length {len(arr)}, expected {length}"
                )
            self._columns[name] = arr
        self._length = length or 0

    # -- construction ------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[dict],
                     columns: Optional[Sequence[str]] = None) -> "Table":
        records = list(records)
        if not records:
            return cls({name: [] for name in (columns or [])})
        names = list(columns) if columns is not None else list(records[0])
        return cls({
            name: [record.get(name) for record in records] for name in names
        })

    # -- basics ---------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; have {self.column_names}"
            ) from None

    def to_records(self) -> list[dict]:
        names = self.column_names
        return [
            {name: self._columns[name][i] for name in names}
            for i in range(self._length)
        ]

    def row(self, index: int) -> dict:
        return {name: col[index] for name, col in self._columns.items()}

    # -- transformation --------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Table":
        return Table({name: self._columns[name] for name in names})

    def with_column(self, name: str, values) -> "Table":
        arr = as_column(values)
        if len(arr) != self._length:
            raise ValueError("column length mismatch")
        columns = dict(self._columns)
        columns[name] = arr
        return Table(columns)

    def filter(self, mask) -> "Table":
        """Rows where ``mask`` (boolean array or row predicate) holds."""
        if callable(mask):
            mask = np.fromiter(
                (bool(mask(self.row(i))) for i in range(self._length)),
                dtype=bool, count=self._length,
            )
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._length:
            raise ValueError("mask length mismatch")
        return Table({n: c[mask] for n, c in self._columns.items()})

    def take(self, indices) -> "Table":
        indices = np.asarray(indices, dtype=np.intp)
        return Table({n: c[indices] for n, c in self._columns.items()})

    def head(self, n: int = 5) -> "Table":
        return self.take(np.arange(min(n, self._length)))

    def sort_by(self, name: str, descending: bool = False) -> "Table":
        order = np.argsort(self._columns[name], kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    def concat(self, other: "Table") -> "Table":
        if set(self.column_names) != set(other.column_names):
            raise ValueError("column sets differ")
        return Table({
            name: np.concatenate([self._columns[name], other[name]])
            for name in self.column_names
        })

    # -- aggregation ----------------------------------------------------------
    def unique(self, name: str) -> np.ndarray:
        return np.unique(self._columns[name].astype(object))

    def group_indices(self, by: str) -> dict:
        """Mapping of group value → row-index list (first-seen order).

        The dict-based fast path behind :meth:`groupby` and
        :meth:`aggregate`: one pass over the python values of the key
        column (``tolist()`` is far cheaper than per-row ndarray
        indexing), no sub-Table materialisation.
        """
        index_lists: dict = {}
        for i, value in enumerate(self._columns[by].tolist()):
            index_lists.setdefault(value, []).append(i)
        return index_lists

    def groupby(self, by: str) -> dict:
        """Mapping of group value → sub-Table (stable row order)."""
        return {
            value: self.take(indices)
            for value, indices in self.group_indices(by).items()
        }

    def aggregate(self, by: str, agg: dict[str, Callable]) -> "Table":
        """Group by ``by`` and reduce named columns.

        ``agg`` maps output column → (source column, reducer) or a
        reducer applied to the same-named column.
        """
        groups = self.groupby(by)
        out: dict[str, list] = {by: []}
        for name in agg:
            out[name] = []
        for value, sub in groups.items():
            out[by].append(value)
            for name, spec in agg.items():
                if isinstance(spec, tuple):
                    source, func = spec
                else:
                    source, func = name, spec
                out[name].append(func(sub[source]))
        return Table(out)

    # -- joins -------------------------------------------------------------------
    def join(self, other: "Table", on: Sequence[str],
             how: str = "inner", suffix: str = "_r") -> "Table":
        """Hash equi-join on the ``on`` columns.

        ``how`` is ``inner`` or ``left``; right-side name collisions get
        ``suffix``.  A left row joining no right row yields ``None`` in
        the right columns (left join only).
        """
        if how not in ("inner", "left"):
            raise ValueError("how must be 'inner' or 'left'")
        on = list(on)
        # Hash join: index the right side once, then resolve every left
        # row to (left index, right index) pairs and gather whole
        # columns with one fancy-index per column instead of per-cell
        # list appends.  ``tolist()`` keys keep hashing cheap and make
        # left/right key values compare as plain python objects.
        right_index: dict = {}
        right_keys = zip(*(other[c].tolist() for c in on)) if len(other) \
            else iter(())
        for j, key in enumerate(right_keys):
            right_index.setdefault(key, []).append(j)

        left_idx: list[int] = []
        right_idx: list[int] = []  # -1 marks an unmatched left row
        left_keys = zip(*(self._columns[c].tolist() for c in on)) \
            if self._length else iter(())
        for i, key in enumerate(left_keys):
            matches = right_index.get(key)
            if matches is None:
                if how == "left":
                    left_idx.append(i)
                    right_idx.append(-1)
                continue
            for j in matches:
                left_idx.append(i)
                right_idx.append(j)

        left_indices = np.asarray(left_idx, dtype=np.intp)
        right_indices = np.asarray(right_idx, dtype=np.intp)
        null_mask = right_indices < 0

        out: dict[str, np.ndarray] = {
            name: self._columns[name][left_indices]
            for name in self.column_names
        }
        right_cols = [c for c in other.column_names if c not in on]
        for c in right_cols:
            out_name = c + suffix if c in self._columns else c
            source = other[c]
            if not null_mask.any():
                out[out_name] = source[right_indices]
            elif len(source) == 0:
                out[out_name] = np.full(len(right_indices), None,
                                        dtype=object)
            else:
                gathered = source[np.where(null_mask, 0, right_indices)] \
                    .astype(object)
                gathered[null_mask] = None
                out[out_name] = gathered
        return Table(out)

    # -- description -----------------------------------------------------------
    def describe_column(self, name: str) -> dict:
        col = self._columns[name]
        if col.dtype.kind in ("i", "u", "f"):
            values = col.astype(float)
            return {
                "count": int(len(values)),
                "mean": float(values.mean()) if len(values) else float("nan"),
                "std": float(values.std()) if len(values) else float("nan"),
                "min": float(values.min()) if len(values) else float("nan"),
                "max": float(values.max()) if len(values) else float("nan"),
            }
        uniques, counts = np.unique(col.astype(str), return_counts=True)
        top = int(np.argmax(counts)) if len(counts) else -1
        return {
            "count": int(len(col)),
            "unique": int(len(uniques)),
            "top": uniques[top] if top >= 0 else None,
            "top_count": int(counts[top]) if top >= 0 else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Table {self._length} rows x {len(self._columns)} cols>"
