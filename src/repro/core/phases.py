"""Phase decomposition of a run: I/O, communication, computation, total.

Reproduces the quantities behind Fig. 3: "The I/O bar represents the
sum of the I/O operations collected from Darshan reports, the
communication bar is the sum of all incoming communications to the
workers, and the computation bar is the sum of the computation time
within tasks.  The total bar represents the wall time for the workflow
as a whole, including workflow coordination time" (§IV-C).  As the
paper notes, the three phase sums are non-exclusive (they overlap
across threads and with each other) and are *not* expected to add up
to the wall time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .session import AnalysisSession

__all__ = ["PhaseBreakdown", "phase_breakdown"]


@dataclass(frozen=True)
class PhaseBreakdown:
    """Summed phase durations (seconds) for one run."""

    io: float
    communication: float
    computation: float
    total: float
    n_io_ops: int
    n_comms: int
    n_tasks: int

    def normalized(self) -> dict:
        """Each phase as a fraction of this run's wall time."""
        denom = self.total if self.total > 0 else 1.0
        return {
            "io": self.io / denom,
            "communication": self.communication / denom,
            "computation": self.computation / denom,
            "total": 1.0,
        }

    def as_dict(self) -> dict:
        return {
            "io": self.io, "communication": self.communication,
            "computation": self.computation, "total": self.total,
            "n_io_ops": self.n_io_ops, "n_comms": self.n_comms,
            "n_tasks": self.n_tasks,
        }


def phase_breakdown(run) -> PhaseBreakdown:
    """Compute the Fig.-3 quantities for one run (session-cached).

    ``run`` may be a :class:`~repro.core.ingest.RunData` or an
    :class:`~repro.core.session.AnalysisSession`.
    """
    session = AnalysisSession.of(run)
    return session.cached("phase_breakdown",
                          lambda: _build_breakdown(session))


def _build_breakdown(session: AnalysisSession) -> PhaseBreakdown:
    run = session.run
    tasks = session.task_view()
    comms = session.comm_view()
    io_time = run.darshan.total_io_time if run.darshan is not None else 0.0
    n_io_ops = run.darshan.total_io_ops if run.darshan is not None else 0
    comm_time = float(np.sum(comms["duration"])) if len(comms) else 0.0
    compute_time = (
        float(np.sum(tasks["compute_time"])) if len(tasks) else 0.0
    )
    return PhaseBreakdown(
        io=io_time,
        communication=comm_time,
        computation=compute_time,
        total=run.wall_time,
        n_io_ops=n_io_ops,
        n_comms=len(comms),
        n_tasks=len(tasks),
    )
