"""Communication analysis (the Fig.-5 analysis).

"Figure 5 illustrates the variability in communication duration as the
size of messages varies.  The x-axis shows the sizes of messages
transferred ..., the y-axis shows the time spent in a communication
(seconds), and the color indicates whether a communication is performed
across nodes or within a single node" (§IV-D2).  :func:`comm_scatter`
emits that series; :func:`comm_summary` and
:func:`slow_small_messages` quantify the "performance abnormality" the
paper points at — long-duration small messages near workflow start.
"""

from __future__ import annotations

import numpy as np

from .table import Table

__all__ = ["comm_scatter", "comm_summary", "slow_small_messages"]


def comm_scatter(comms: Table) -> Table:
    """The plottable Fig.-5 series.

    Columns: nbytes, duration, same_node, same_switch, start.
    """
    return comms.select(
        ["nbytes", "duration", "same_node", "same_switch", "start"]
    ).sort_by("start")


def comm_summary(comms: Table) -> dict:
    """Headline statistics split by locality."""
    out = {}
    for label, flag in (("intranode", True), ("internode", False)):
        sub = comms.filter(np.asarray(comms["same_node"]) == flag) \
            if len(comms) else comms
        if len(sub) == 0:
            out[label] = {"count": 0}
            continue
        durations = sub["duration"].astype(float)
        sizes = sub["nbytes"].astype(float)
        out[label] = {
            "count": int(len(sub)),
            "total_time": float(durations.sum()),
            "median_duration": float(np.median(durations)),
            "p95_duration": float(np.percentile(durations, 95)),
            "total_bytes": int(sizes.sum()),
            "effective_bandwidth": float(sizes.sum() / durations.sum())
            if durations.sum() > 0 else 0.0,
        }
    out["n_total"] = int(len(comms))
    return out


def slow_small_messages(comms: Table, size_threshold: int = 1 * 2**20,
                        duration_factor: float = 5.0) -> Table:
    """Small messages that took anomalously long.

    A message under ``size_threshold`` bytes whose duration exceeds
    ``duration_factor`` times the median duration of its size class is
    flagged.  Returns the flagged rows with locality and start time, so
    the analyst can check the paper's observation that they cluster
    "near the beginning of the workflow" and are "almost evenly split
    between inter- and intranode".
    """
    if len(comms) == 0:
        return comms
    small_mask = comms["nbytes"].astype(float) < size_threshold
    small = comms.filter(small_mask)
    if len(small) == 0:
        return small
    median = float(np.median(small["duration"].astype(float)))
    flagged = small.filter(
        small["duration"].astype(float) > duration_factor * median
    )
    return flagged.sort_by("start")
