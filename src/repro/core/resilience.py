"""Resilience analysis: what failed, what it cost, how the WMS recovered.

The paper's provenance machinery explains *healthy* runs; this module
is its failure-mode counterpart, closing the loop Souza et al. argue
for — provenance must capture failure and recovery, not just success.
Injected faults (see :mod:`repro.faults`) arrive in the event stream as
``fault`` events carrying the same shared identifiers as every other
record, so they join against transitions and warnings like any other
source:

* :func:`resilience_view` — the fault events as a uniform
  :class:`~repro.core.table.Table` (one row per injection);
* :func:`resilience_report` — recovery economics: recomputed-task
  counts, retry histograms, per-fault time-to-recovery, and the
  fault→warning correlation via :mod:`~repro.core.warnings_analysis`.

Both are session-aware: pass an :class:`AnalysisSession` (or anything
``AnalysisSession.of`` accepts) and results are memoized per run.
"""

from __future__ import annotations

import numpy as np

from .table import Table
from .warnings_analysis import warnings_in_window

__all__ = ["RECOVERY_STIMULI", "resilience_view", "resilience_report"]

#: Transition stimuli that only failure handling produces.
RECOVERY_STIMULI = (
    "worker-failed",
    "recompute",
    "retry",
    "data-lost",
    "task-timeout",
    "upstream-erred",
    "no-workers",
)

_VIEW_COLUMNS = ("fault_id", "kind", "target", "worker", "hostname",
                 "timestamp", "duration", "magnitude")


def _session(source):
    from .session import AnalysisSession
    return AnalysisSession.of(source)


def resilience_view(source) -> Table:
    """One row per injected fault, joinable on worker/hostname/timestamp.

    Columns: fault_id, kind, target, worker, hostname, timestamp,
    duration, magnitude.  Empty (with stable columns) for a run without
    injected faults.
    """
    session = _session(source)
    return session.cached("resilience_view", lambda: _build_view(session))


def _build_view(session) -> Table:
    events = session.run.events_of_type("fault")
    if not events:
        return Table({name: [] for name in _VIEW_COLUMNS})
    return Table.from_records(events, columns=_VIEW_COLUMNS)


def resilience_report(source) -> dict:
    """Aggregate recovery statistics for one run.

    Keys:

    ``n_faults`` / ``faults``
        Count and flat records of every injected fault.
    ``recomputed_tasks`` / ``recomputed_keys``
        Work redone because its output was lost (transitions with the
        ``recompute`` stimulus).
    ``retried_tasks`` / ``total_retries`` / ``retry_histogram``
        Tasks that consumed retry budget; the histogram maps number of
        attempts to how many tasks needed that many.
    ``recovery``
        Per fault: seconds from injection to the first recovery
        transition (``detected_after``) and to the last one
        (``recovered_after``); ``None`` when the fault triggered no
        recovery (e.g. a blackout shorter than the detection deadline).
    ``fault_warnings``
        Per fault: warnings landing inside the fault window — the
        fault→symptom correlation of the Fig.-7 analysis.
    """
    session = _session(source)
    return session.cached("resilience_report",
                          lambda: _build_report(session))


def _build_report(session) -> dict:
    faults = resilience_view(session)
    transitions = session.transition_view()
    stimuli = transitions["stimulus"]
    timestamps = transitions["timestamp"].astype(float)
    keys = transitions["key"]
    finish = transitions["finish_state"]

    recompute_mask = (stimuli == "recompute") & (finish == "waiting")
    recomputed_keys = sorted(set(keys[recompute_mask]))

    # One ``released`` transition with the ``retry`` stimulus per
    # consumed retry: count attempts per key.
    retry_mask = (stimuli == "retry") & (finish == "released")
    retry_counts: dict[str, int] = {}
    for key in keys[retry_mask]:
        retry_counts[key] = retry_counts.get(key, 0) + 1
    retry_histogram: dict[int, int] = {}
    for attempts in retry_counts.values():
        retry_histogram[attempts] = retry_histogram.get(attempts, 0) + 1

    recovery_mask = np.isin(stimuli, RECOVERY_STIMULI)
    recovery_times = timestamps[recovery_mask]

    fault_rows = faults.to_records() if len(faults) else []
    recovery = []
    fault_warnings = []
    warnings_table = session.warning_view()
    for row in fault_rows:
        t0 = float(row["timestamp"])
        after = recovery_times[recovery_times >= t0]
        recovery.append({
            "fault_id": row["fault_id"],
            "kind": row["kind"],
            "target": row["target"],
            "time": t0,
            "detected_after": float(after.min() - t0) if len(after) else None,
            "recovered_after": float(after.max() - t0) if len(after) else None,
        })
        window_end = t0 + max(float(row["duration"]), 1e-9)
        fault_warnings.append({
            "fault_id": row["fault_id"],
            "kind": row["kind"],
            "window": (t0, window_end),
            "n_warnings": warnings_in_window(warnings_table, t0, window_end),
        })

    return {
        "n_faults": len(fault_rows),
        "faults": fault_rows,
        "recomputed_tasks": int(recompute_mask.sum()),
        "recomputed_keys": recomputed_keys,
        "retried_tasks": len(retry_counts),
        "total_retries": int(retry_mask.sum()),
        "retry_histogram": retry_histogram,
        "recovery": recovery,
        "fault_warnings": fault_warnings,
    }
