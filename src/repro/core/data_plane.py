"""Data-plane analysis: where large payloads actually travelled.

The :mod:`repro.proxystore` layer records every pass-by-reference
operation as a first-class provenance event — ``proxy_put`` (output
staged into a backend), ``proxy_resolve`` (a consumer materialised the
blob, with the measured duration and the transfer time the scheduler's
flat bandwidth estimate would have budgeted), ``proxy_evict`` (blob
released).  Because they carry the same §III-E3 identifiers (key,
worker, hostname, timestamp) as every other event, they join against
task runs and transitions like any other source:

* :func:`data_plane_view` — the proxy events as one uniform
  :class:`~repro.core.table.Table`, time-ordered;
* :func:`data_plane_report` — per-backend traffic accounting: puts,
  resolves, fallbacks, and the transfer time saved versus the
  scheduler-path estimate (the before/after attribution the ProxyStore
  integration exists to measure).

Both are session-aware: pass an :class:`AnalysisSession` (or anything
``AnalysisSession.of`` accepts) and results are memoized per run.
"""

from __future__ import annotations

from .table import Table

__all__ = ["PROXY_EVENT_TYPES", "data_plane_view", "data_plane_report"]

#: The event types the data plane emits (mirror of
#: :data:`repro.proxystore.PROXY_EVENT_TYPES`, repeated here so the
#: analysis layer does not import the runtime package).
PROXY_EVENT_TYPES = ("proxy_put", "proxy_resolve", "proxy_evict")

_VIEW_COLUMNS = ("type", "key", "backend", "worker", "hostname",
                 "timestamp", "nbytes", "duration", "baseline_s",
                 "retries", "status", "fingerprint")


def _session(source):
    from .session import AnalysisSession
    return AnalysisSession.of(source)


def data_plane_view(source) -> Table:
    """One row per proxy_put/proxy_resolve/proxy_evict, time-ordered.

    Columns: type, key, backend, worker, hostname, timestamp, nbytes,
    duration, baseline_s (resolve rows only — the scheduler-path
    estimate ``nbytes / bandwidth_estimate``), retries, status,
    fingerprint.  Empty (with stable columns) for a run that executed
    without the data plane.
    """
    session = _session(source)
    return session.cached("data_plane_view", lambda: _build_view(session))


def _build_view(session) -> Table:
    events: list[dict] = []
    for event_type in PROXY_EVENT_TYPES:
        events.extend(session.run.events_of_type(event_type))
    if not events:
        return Table({name: [] for name in _VIEW_COLUMNS})
    events.sort(key=lambda e: (e.get("timestamp", 0.0), e.get("key", "")))
    return Table.from_records(events, columns=_VIEW_COLUMNS)


def data_plane_report(source) -> dict:
    """Per-backend traffic accounting for one run.

    Keys:

    ``enabled``
        Whether any proxy events exist at all.
    ``n_puts`` / ``n_resolves`` / ``n_evictions`` / ``n_failed_resolves``
        Operation counts across all backends.
    ``bytes_put`` / ``bytes_resolved``
        Payload volume through the data plane.
    ``resolve_s`` / ``baseline_s`` / ``saved_s``
        Measured resolve time, the scheduler-path estimate for the
        same bytes, and their difference — the transfer time the
        data plane saved (negative when a backend is slower than the
        scheduler's optimistic budget).
    ``by_backend``
        The same accounting split per backend name — the
        per-backend attribution the acceptance criteria ask for.
    """
    session = _session(source)
    return session.cached("data_plane_report",
                          lambda: _build_report(session))


def _new_bucket() -> dict:
    return {
        "n_puts": 0, "n_resolves": 0, "n_evictions": 0,
        "n_failed_resolves": 0, "total_retries": 0,
        "bytes_put": 0, "bytes_resolved": 0,
        "put_s": 0.0, "resolve_s": 0.0, "baseline_s": 0.0,
        "saved_s": 0.0,
    }


def data_plane_rows(view: Table) -> list[dict]:
    return view.to_records() if len(view) else []


def _build_report(session) -> dict:
    rows = data_plane_rows(data_plane_view(session))
    total = _new_bucket()
    by_backend: dict[str, dict] = {}
    for row in rows:
        backend = row.get("backend") or "?"
        bucket = by_backend.get(backend)
        if bucket is None:
            bucket = by_backend[backend] = _new_bucket()
        kind = row["type"]
        for target in (bucket, total):
            if kind == "proxy_put":
                target["n_puts"] += 1
                target["bytes_put"] += int(row["nbytes"] or 0)
                target["put_s"] += float(row["duration"] or 0.0)
            elif kind == "proxy_resolve":
                target["total_retries"] += int(row["retries"] or 0)
                if row.get("status") == "ok":
                    target["n_resolves"] += 1
                    target["bytes_resolved"] += int(row["nbytes"] or 0)
                    target["resolve_s"] += float(row["duration"] or 0.0)
                    target["baseline_s"] += float(row["baseline_s"] or 0.0)
                else:
                    target["n_failed_resolves"] += 1
            elif kind == "proxy_evict":
                target["n_evictions"] += 1
    for bucket in [total, *by_backend.values()]:
        bucket["saved_s"] = bucket["baseline_s"] - bucket["resolve_s"]
    return {"enabled": bool(rows), **total, "by_backend": by_backend}
