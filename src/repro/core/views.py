"""View builders: record sets → uniform :class:`~repro.core.table.Table`s.

"PERFRECUP combines information from Darshan logs and from Dask
scheduler and worker logs, including task keys, dependencies, state
transitions, location in the distributed memory (worker, thread),
worker communication, and other events ... to create pandas DataFrames
as 'views'" (§III-D).  Each function below produces one such view with
a documented column set; the shared identifier columns (``hostname``,
``thread_id``/``pthread_id``, timestamps, worker addresses) are what
make the views joinable (§V).
"""

from __future__ import annotations

from .ingest import RunData
from .table import Table

__all__ = [
    "task_view",
    "transition_view",
    "io_view",
    "comm_view",
    "warning_view",
    "spill_view",
    "steal_view",
    "dependency_view",
    "log_view",
]


def task_view(run: RunData) -> Table:
    """One row per completed task execution.

    Columns: key, group, prefix, worker, hostname, thread_id, start,
    stop, duration, output_nbytes, graph_index, compute_time, io_time,
    n_reads, n_writes.
    """
    rows = []
    for e in run.events_of_type("task_run"):
        rows.append({
            "key": e["key"], "group": e["group"], "prefix": e["prefix"],
            "worker": e["worker"], "hostname": e["hostname"],
            "thread_id": e["thread_id"], "start": e["start"],
            "stop": e["stop"], "duration": e["stop"] - e["start"],
            "output_nbytes": e["output_nbytes"],
            "graph_index": e["graph_index"],
            "compute_time": e["compute_time"], "io_time": e["io_time"],
            "n_reads": e["n_reads"], "n_writes": e["n_writes"],
        })
    return Table.from_records(rows, columns=[
        "key", "group", "prefix", "worker", "hostname", "thread_id",
        "start", "stop", "duration", "output_nbytes", "graph_index",
        "compute_time", "io_time", "n_reads", "n_writes",
    ])


def transition_view(run: RunData) -> Table:
    """One row per captured state transition (scheduler and workers)."""
    rows = []
    for e in run.events_of_type("transition"):
        rows.append({
            "key": e["key"], "group": e["group"], "prefix": e["prefix"],
            "start_state": e["start_state"],
            "finish_state": e["finish_state"],
            "timestamp": e["timestamp"], "stimulus": e["stimulus"],
            "worker": e["worker"], "source": e["source"],
        })
    return Table.from_records(rows, columns=[
        "key", "group", "prefix", "start_state", "finish_state",
        "timestamp", "stimulus", "worker", "source",
    ])


def io_view(run: RunData) -> Table:
    """One row per DXT segment from the Darshan side.

    Columns: hostname, rank, pthread_id, file, op, offset, length,
    start, end, duration.
    """
    if run.darshan is None:
        return Table({c: [] for c in (
            "hostname", "rank", "pthread_id", "file", "op", "offset",
            "length", "start", "end", "duration",
        )})
    rows = run.darshan.dxt_rows()
    for row in rows:
        row["duration"] = row["end"] - row["start"]
    return Table.from_records(rows, columns=[
        "hostname", "rank", "pthread_id", "file", "op", "offset",
        "length", "start", "end", "duration",
    ])


def comm_view(run: RunData) -> Table:
    """One row per incoming inter-worker transfer."""
    rows = []
    for e in run.events_of_type("communication"):
        rows.append({
            "key": e["key"], "src_worker": e["src_worker"],
            "dst_worker": e["dst_worker"], "src_host": e["src_host"],
            "dst_host": e["dst_host"], "nbytes": e["nbytes"],
            "start": e["start"], "stop": e["stop"],
            "duration": e["stop"] - e["start"],
            "same_node": e["same_node"], "same_switch": e["same_switch"],
        })
    return Table.from_records(rows, columns=[
        "key", "src_worker", "dst_worker", "src_host", "dst_host",
        "nbytes", "start", "stop", "duration", "same_node", "same_switch",
    ])


def warning_view(run: RunData) -> Table:
    """One row per runtime warning (GC, unresponsive event loop)."""
    rows = []
    for e in run.events_of_type("warning"):
        rows.append({
            "source": e["source"], "hostname": e["hostname"],
            "kind": e["kind"], "time": e["time"],
            "duration": e["duration"], "message": e["message"],
        })
    return Table.from_records(rows, columns=[
        "source", "hostname", "kind", "time", "duration", "message",
    ])


def spill_view(run: RunData) -> Table:
    """One row per spill/unspill movement on any worker."""
    rows = []
    for e in run.events_of_type("spill"):
        rows.append({
            "worker": e["worker"], "hostname": e["hostname"],
            "key": e["key"], "nbytes": e["nbytes"], "time": e["time"],
            "direction": e["direction"],
        })
    return Table.from_records(rows, columns=[
        "worker", "hostname", "key", "nbytes", "time", "direction",
    ])


def steal_view(run: RunData) -> Table:
    """One row per work-stealing decision."""
    rows = []
    for e in run.events_of_type("steal"):
        rows.append({
            "key": e["key"], "victim": e["victim"], "thief": e["thief"],
            "time": e["time"],
            "victim_occupancy": e["victim_occupancy"],
            "thief_occupancy": e["thief_occupancy"],
        })
    return Table.from_records(rows, columns=[
        "key", "victim", "thief", "time", "victim_occupancy",
        "thief_occupancy",
    ])


def dependency_view(run: RunData) -> Table:
    """One row per task as registered at graph submission.

    Columns: key, group, prefix, deps (list), n_deps, graph_index,
    submitted_at.
    """
    rows = []
    for e in run.events_of_type("task_added"):
        rows.append({
            "key": e["key"], "group": e["group"], "prefix": e["prefix"],
            "deps": list(e["deps"]), "n_deps": len(e["deps"]),
            "graph_index": e["graph_index"],
            "submitted_at": e["timestamp"],
        })
    return Table.from_records(rows, columns=[
        "key", "group", "prefix", "deps", "n_deps", "graph_index",
        "submitted_at",
    ])


def log_view(run: RunData) -> Table:
    """One row per free-text log line."""
    return Table.from_records(run.logs, columns=[
        "source", "time", "level", "message",
    ])
