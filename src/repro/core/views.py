"""View builders: record sets → uniform :class:`~repro.core.table.Table`s.

"PERFRECUP combines information from Darshan logs and from Dask
scheduler and worker logs, including task keys, dependencies, state
transitions, location in the distributed memory (worker, thread),
worker communication, and other events ... to create pandas DataFrames
as 'views'" (§III-D).  Each builder below produces one such view with a
documented column set; the shared identifier columns (``hostname``,
``thread_id``/``pthread_id``, timestamps, worker addresses) are what
make the views joinable (§V).

Builders are **columnar**: they pull whole NumPy columns out of the
run's :class:`~repro.core.eventstore.EventStore` partition and compute
derived columns (``duration``, ``n_deps``) by array math — no per-row
dicts on the hot path.  The entry point is
:class:`~repro.core.session.AnalysisSession`, which memoizes every view
per run: ``AnalysisSession.of(source).task_view()`` (or
``.view("task")``).  The historical module-level free functions
(``task_view(run)``-style) completed their deprecation cycle and are
gone.
"""

from __future__ import annotations

from .eventstore import columns_from_records
from .ingest import RunData
from .table import Table

__all__ = [
    "VIEW_BUILDERS",
    "VIEW_NAMES",
]


# ---------------------------------------------------------------------------
# columnar builders (one per view; AnalysisSession caches their output)
# ---------------------------------------------------------------------------

def build_task_view(run: RunData) -> Table:
    """One row per completed task execution.

    Columns: key, group, prefix, worker, hostname, thread_id, start,
    stop, duration, output_nbytes, graph_index, compute_time, io_time,
    n_reads, n_writes.
    """
    cols = run.store.columns("task_run", [
        "key", "group", "prefix", "worker", "hostname", "thread_id",
        "start", "stop", "output_nbytes", "graph_index", "compute_time",
        "io_time", "n_reads", "n_writes",
    ])
    start = cols["start"].astype(float)
    stop = cols["stop"].astype(float)
    return Table({
        "key": cols["key"], "group": cols["group"],
        "prefix": cols["prefix"], "worker": cols["worker"],
        "hostname": cols["hostname"], "thread_id": cols["thread_id"],
        "start": cols["start"], "stop": cols["stop"],
        "duration": stop - start,
        "output_nbytes": cols["output_nbytes"],
        "graph_index": cols["graph_index"],
        "compute_time": cols["compute_time"], "io_time": cols["io_time"],
        "n_reads": cols["n_reads"], "n_writes": cols["n_writes"],
    })


def build_transition_view(run: RunData) -> Table:
    """One row per captured state transition (scheduler and workers)."""
    return run.store.table("transition", [
        "key", "group", "prefix", "start_state", "finish_state",
        "timestamp", "stimulus", "worker", "source",
    ])


def build_io_view(run: RunData) -> Table:
    """One row per DXT segment from the Darshan side.

    Columns: hostname, rank, pthread_id, file, op, offset, length,
    start, end, duration.
    """
    if run.darshan is None:
        return Table({c: [] for c in (
            "hostname", "rank", "pthread_id", "file", "op", "offset",
            "length", "start", "end", "duration",
        )})
    cols = columns_from_records(run.darshan.dxt_rows(), [
        "hostname", "rank", "pthread_id", "file", "op", "offset",
        "length", "start", "end",
    ])
    cols["duration"] = cols["end"].astype(float) - \
        cols["start"].astype(float)
    return Table(cols)


def build_comm_view(run: RunData) -> Table:
    """One row per incoming inter-worker transfer."""
    cols = run.store.columns("communication", [
        "key", "src_worker", "dst_worker", "src_host", "dst_host",
        "nbytes", "start", "stop", "same_node", "same_switch",
    ])
    return Table({
        "key": cols["key"], "src_worker": cols["src_worker"],
        "dst_worker": cols["dst_worker"], "src_host": cols["src_host"],
        "dst_host": cols["dst_host"], "nbytes": cols["nbytes"],
        "start": cols["start"], "stop": cols["stop"],
        "duration": cols["stop"].astype(float)
        - cols["start"].astype(float),
        "same_node": cols["same_node"],
        "same_switch": cols["same_switch"],
    })


def build_warning_view(run: RunData) -> Table:
    """One row per runtime warning (GC, unresponsive event loop)."""
    return run.store.table("warning", [
        "source", "hostname", "kind", "time", "duration", "message",
    ])


def build_spill_view(run: RunData) -> Table:
    """One row per spill/unspill movement on any worker."""
    return run.store.table("spill", [
        "worker", "hostname", "key", "nbytes", "time", "direction",
    ])


def build_steal_view(run: RunData) -> Table:
    """One row per work-stealing decision."""
    return run.store.table("steal", [
        "key", "victim", "thief", "time", "victim_occupancy",
        "thief_occupancy",
    ])


def build_dependency_view(run: RunData) -> Table:
    """One row per task as registered at graph submission.

    Columns: key, group, prefix, deps (list), n_deps, graph_index,
    submitted_at.
    """
    records = run.store.records("task_added")
    cols = run.store.columns("task_added", [
        "key", "group", "prefix", "graph_index",
    ])
    # Cells alias the events' dependency lists — safe because loaded
    # runs are immutable (see RunData.store).
    deps = [record["deps"] for record in records]
    return Table({
        "key": cols["key"], "group": cols["group"],
        "prefix": cols["prefix"], "deps": deps,
        "n_deps": [len(d) for d in deps],
        "graph_index": cols["graph_index"],
        "submitted_at": run.store.column("task_added", "timestamp"),
    })


def build_log_view(run: RunData) -> Table:
    """One row per free-text log line."""
    return Table(columns_from_records(run.logs, [
        "source", "time", "level", "message",
    ]))


#: View name → columnar builder; the AnalysisSession cache is keyed on
#: these names, and ``session.view(name)`` accepts exactly this set.
VIEW_BUILDERS = {
    "task": build_task_view,
    "transition": build_transition_view,
    "io": build_io_view,
    "comm": build_comm_view,
    "warning": build_warning_view,
    "spill": build_spill_view,
    "steal": build_steal_view,
    "dependency": build_dependency_view,
    "log": build_log_view,
}

VIEW_NAMES = tuple(VIEW_BUILDERS)
