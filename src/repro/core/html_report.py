"""Single-file HTML report for one run.

``perfrecup report <run_dir>`` (and :func:`html_report` directly)
compose the figure SVGs and the headline tables into one standalone
HTML document — the closest thing to the Dask dashboard the paper
says its analyses go beyond, but built from the *fused multisource*
record set rather than live scheduler state.
"""

from __future__ import annotations

import html
import os

from .categories import category_profile
from .commstats import comm_scatter, comm_summary
from .critical_path import critical_path_summary
from .parallel_coords import longest_categories, parallel_coordinates
from .phases import phase_breakdown
from .session import AnalysisSession
from .timeline import io_timeline
from .utilization import overall_utilization
from .viz import fig4_svg, fig5_svg, fig6_svg, fig7_svg, heatmap_svg
from .warnings_analysis import warning_histogram

__all__ = ["html_report", "write_html_report"]

_STYLE = """
body { font-family: sans-serif; margin: 24px auto; max-width: 980px;
       color: #222; }
h1 { font-size: 22px; } h2 { font-size: 17px; margin-top: 28px;
     border-bottom: 1px solid #ddd; padding-bottom: 4px; }
table { border-collapse: collapse; font-size: 13px; margin: 8px 0; }
th, td { border: 1px solid #ccc; padding: 4px 8px; text-align: left; }
th { background: #f2f2f2; }
.kpi { display: inline-block; margin: 6px 18px 6px 0; }
.kpi b { font-size: 19px; display: block; }
svg { max-width: 100%; height: auto; border: 1px solid #eee;
      margin: 8px 0; }
"""


def _table_html(records: list[dict], limit: int = 12) -> str:
    records = records[:limit]
    if not records:
        return "<p><i>(empty)</i></p>"
    names = list(records[0])
    head = "".join(f"<th>{html.escape(str(n))}</th>" for n in names)
    rows = []
    for record in records:
        cells = "".join(
            f"<td>{html.escape(_fmt(record.get(n)))}</td>" for n in names
        )
        rows.append(f"<tr>{cells}</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def html_report(data, title: str = "PERFRECUP run report") -> str:
    """Build the standalone HTML document for one run."""
    session = AnalysisSession.of(data)
    data = session.run
    tasks = session.task_view()
    io = session.io_view()
    comms = session.comm_view()
    warnings = session.warning_view()
    breakdown = phase_breakdown(session)
    wall = data.wall_time

    workers = data.provenance.get("layers", {}).get(
        "application", {}).get("wms", {}).get("workers", [])
    n_threads = sum(len(w.get("thread_ids", [])) for w in workers) or 1
    utilization = overall_utilization(tasks, n_threads, wall) \
        if len(tasks) else 0.0
    cp = critical_path_summary(session)

    workflow = data.provenance.get("layers", {}).get(
        "application", {}).get("workflow", {})

    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>workflow: <b>{html.escape(str(workflow.get('name', '?')))}"
        f"</b> &nbsp; run_index: {data.run_index}</p>",
        "<div>",
        f"<span class='kpi'><b>{wall:.1f}s</b>wall time</span>",
        f"<span class='kpi'><b>{len(tasks)}</b>tasks</span>",
        f"<span class='kpi'><b>{len(io)}</b>I/O ops</span>",
        f"<span class='kpi'><b>{len(comms)}</b>transfers</span>",
        f"<span class='kpi'><b>{len(warnings)}</b>warnings</span>",
        f"<span class='kpi'><b>{utilization:.1%}</b>thread utilization"
        "</span>",
        "</div>",
        "<h2>Phase breakdown</h2>",
        _table_html([breakdown.as_dict()]),
        "<h2>Longest task categories</h2>",
        _table_html(longest_categories(tasks, top=8).to_records()),
        "<h2>Category profile</h2>",
        _table_html(category_profile(tasks).to_records(), limit=10),
        "<h2>Critical path</h2>",
        _table_html([{
            "length": cp["length"],
            "span_s": round(cp["span"], 3),
            "execution_s": round(cp["execution"], 3),
            "gap_s": round(cp["gap"], 3),
            "dominant_categories": ", ".join(list(cp["by_prefix"])[:3]),
        }]),
        "<h2>Job I/O intensity (HEATMAP)</h2>",
        heatmap_svg(data.darshan.job_heatmap()
                    if data.darshan is not None else None),
        "<h2>Per-thread I/O timeline</h2>",
        fig4_svg(io_timeline(io)),
        "<h2>Communication scatter</h2>",
        fig5_svg(comm_scatter(comms)),
        "<h2>Parallel coordinates</h2>",
        fig6_svg(parallel_coordinates(tasks)),
        "<h2>Warning distribution</h2>",
        fig7_svg(warning_histogram(warnings,
                                   bucket=max(1.0, wall / 20))),
        "<h2>Communication summary</h2>",
        _table_html([
            {"locality": k, **v}
            for k, v in comm_summary(comms).items() if isinstance(v, dict)
        ]),
        "</body></html>",
    ]
    return "\n".join(parts)


def write_html_report(data, path: str,
                      title: str = "PERFRECUP run report") -> str:
    """Persist the HTML report for ``data``; returns the path written."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(html_report(data, title=title))
    return path
