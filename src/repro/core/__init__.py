"""PERFRECUP: the multisource data aggregation, analysis, and
visualization engine — the paper's core contribution (§III-D).

Pipeline: :meth:`RunData.load` ingests one run's artifacts (Mofka
streams, Darshan logs, text logs, provenance document) from a run
directory or a live instrumented run; the columnar
:class:`EventStore` partitions the event stream by type once; the view
builders turn it into uniform :class:`Table`s sharing identifier
columns; the correlation layer fuses I/O onto tasks via hostname +
pthread ID + timestamps; and the analysis modules reproduce every
figure-level result of the paper's evaluation (phases/variability, I/O
timelines, communication scatter, parallel coordinates, warning
distributions, per-task lineage, cross-run scheduling comparison, FAIR
checks).

The documented entry point is :class:`AnalysisSession` — a memoized
facade that caches every view and derived analysis per run, with
:func:`sessions_for` / :func:`map_sessions` fanning multi-run
workloads out over ``concurrent.futures``::

    from repro.core import AnalysisSession
    session = AnalysisSession.of(result.data)   # or a run-dir path
    tasks = session.task_view()                 # built once, cached

The ``task_view(run)``-style free functions completed their
deprecation cycle and were removed; every view is reached through a
session (``AnalysisSession.of(source).view(name)``).
"""

from .categories import (
    category_across_runs,
    category_io_profile,
    category_profile,
)
from .commstats import comm_scatter, comm_summary, slow_small_messages
from .correlate import fuse_io_with_tasks, per_task_io, unattributed_io
from .critical_path import CriticalHop, critical_path, critical_path_summary
from .data_plane import data_plane_report, data_plane_view
from .fair import (
    IDENTIFIER_REGISTRY,
    check_interoperability,
    identifier_coverage,
    shared_identifiers,
)
from .eventstore import EventStore
from .gaps import format_gap_report, metadata_gaps
from .hotspots import heatmap_similarity, io_hotspots
from .html_report import html_report, write_html_report
from .ingest import RunData
from .session import AnalysisSession, map_sessions, sessions_for
from .parallel_coords import (
    RECOMMENDED_CHUNK_BYTES,
    longest_categories,
    oversized_tasks,
    parallel_coordinates,
)
from .phases import PhaseBreakdown, phase_breakdown
from .provenance import render_provenance, task_provenance
from .report import format_bar, format_records, format_table
from .resilience import (
    RECOVERY_STIMULI,
    resilience_report,
    resilience_view,
)
from .scheduling import compare_runs, order_distance, placement_agreement
from .table import Table
from .timeline import IOPhase, detect_phases, io_timeline
from .utilization import (
    overall_utilization,
    utilization_timeline,
    worker_utilization,
)
from .variability import (
    MetricStats,
    phase_variability,
    prefix_duration_variability,
    summarize_metric,
    variability_report,
)
from .views import VIEW_NAMES
from .warnings_analysis import (
    correlate_warnings_with_tasks,
    warning_histogram,
    warnings_in_window,
)
from .viz import (
    SVGCanvas,
    fig3_svg,
    fig4_svg,
    fig5_svg,
    fig6_svg,
    fig7_svg,
    heatmap_svg,
    write_svg,
)
from .zoom import WindowSummary, zoom

__all__ = [
    "AnalysisSession",
    "EventStore",
    "IDENTIFIER_REGISTRY",
    "VIEW_NAMES",
    "WindowSummary",
    "map_sessions",
    "sessions_for",
    "variability_report",
    "category_across_runs",
    "category_io_profile",
    "category_profile",
    "zoom",
    "CriticalHop",
    "critical_path",
    "critical_path_summary",
    "overall_utilization",
    "utilization_timeline",
    "worker_utilization",
    "SVGCanvas",
    "fig3_svg",
    "fig4_svg",
    "fig5_svg",
    "fig6_svg",
    "fig7_svg",
    "heatmap_svg",
    "write_svg",
    "html_report",
    "format_gap_report",
    "metadata_gaps",
    "heatmap_similarity",
    "io_hotspots",
    "write_html_report",
    "IOPhase",
    "MetricStats",
    "PhaseBreakdown",
    "RECOMMENDED_CHUNK_BYTES",
    "RunData",
    "Table",
    "check_interoperability",
    "comm_scatter",
    "comm_summary",
    "compare_runs",
    "correlate_warnings_with_tasks",
    "data_plane_report",
    "data_plane_view",
    "detect_phases",
    "format_bar",
    "format_records",
    "format_table",
    "fuse_io_with_tasks",
    "identifier_coverage",
    "io_timeline",
    "longest_categories",
    "order_distance",
    "oversized_tasks",
    "parallel_coordinates",
    "per_task_io",
    "phase_breakdown",
    "phase_variability",
    "placement_agreement",
    "prefix_duration_variability",
    "RECOVERY_STIMULI",
    "render_provenance",
    "resilience_report",
    "resilience_view",
    "shared_identifiers",
    "slow_small_messages",
    "summarize_metric",
    "task_provenance",
    "unattributed_io",
    "warning_histogram",
    "warnings_in_window",
]
