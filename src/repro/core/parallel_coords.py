"""Parallel-coordinates task analysis (the Fig.-6 analysis).

"The first column displays the workflow's elapsed time, the second
shows the task category, the third indicates which thread performs the
task, the fourth presents the task output size in megabytes, and the
fifth column shows the overall task duration in seconds" (§IV-D3).
:func:`parallel_coordinates` emits those five coordinates per task;
:func:`longest_categories` and :func:`oversized_tasks` encode the two
findings the paper reads off the chart: the longest tasks belong to
``read_parquet-fused-assign``, and their outputs exceed Dask's
recommended 128 MB chunk size.
"""

from __future__ import annotations

import numpy as np

from .table import Table

__all__ = [
    "RECOMMENDED_CHUNK_BYTES",
    "parallel_coordinates",
    "longest_categories",
    "oversized_tasks",
]

#: Dask's guidance: keep chunk/partition outputs near or below 128 MB.
RECOMMENDED_CHUNK_BYTES = 128 * 2**20


def parallel_coordinates(tasks: Table) -> Table:
    """The five Fig.-6 coordinates, one row per task.

    Columns: elapsed (task start), category (prefix), thread_rank,
    size_mb (output), duration; plus key and oversized flag.
    """
    if len(tasks) == 0:
        return Table({c: [] for c in (
            "key", "elapsed", "category", "thread_rank", "size_mb",
            "duration", "oversized",
        )})
    thread_keys = sorted({
        (tasks["hostname"][i], tasks["thread_id"][i])
        for i in range(len(tasks))
    })
    rank_of = {key: rank for rank, key in enumerate(thread_keys)}
    rows = []
    for i in range(len(tasks)):
        size_mb = float(tasks["output_nbytes"][i]) / 2**20
        rows.append({
            "key": tasks["key"][i],
            "elapsed": float(tasks["start"][i]),
            "category": tasks["prefix"][i],
            "thread_rank": rank_of[
                (tasks["hostname"][i], tasks["thread_id"][i])
            ],
            "size_mb": size_mb,
            "duration": float(tasks["duration"][i]),
            "oversized": bool(
                tasks["output_nbytes"][i] > RECOMMENDED_CHUNK_BYTES
            ),
        })
    return Table.from_records(rows, columns=[
        "key", "elapsed", "category", "thread_rank", "size_mb",
        "duration", "oversized",
    ])


def longest_categories(tasks: Table, top: int = 5) -> Table:
    """Categories ranked by maximum task duration (who are the red lines?).

    Columns: category, n_tasks, max_duration, mean_duration,
    mean_size_mb.
    """
    agg = parallel_coordinates(tasks).aggregate("category", {
        "n_tasks": ("duration", len),
        "max_duration": ("duration", lambda v: float(np.max(v))),
        "mean_duration": ("duration", lambda v: float(np.mean(v))),
        "mean_size_mb": ("size_mb", lambda v: float(np.mean(v))),
    })
    agg = agg.sort_by("max_duration", descending=True)
    # Rename the group column for the documented schema.
    out = Table({
        "category": agg["category"], "n_tasks": agg["n_tasks"],
        "max_duration": agg["max_duration"],
        "mean_duration": agg["mean_duration"],
        "mean_size_mb": agg["mean_size_mb"],
    })
    return out.head(top)


def oversized_tasks(tasks: Table) -> Table:
    """Tasks whose outputs exceed the recommended 128 MB."""
    coords = parallel_coordinates(tasks)
    if len(coords) == 0:
        return coords
    return coords.filter(
        np.asarray(coords["oversized"], dtype=bool)
    ).sort_by("size_mb", descending=True)
