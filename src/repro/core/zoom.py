"""Time-window "zoom" analysis.

Among the analyses the paper names but does not show: "zooming through
a specific time period (get all events, compute/communication/I/O
statistics)" (§IV-D).  :func:`zoom` extracts every record touching a
``[start, end)`` window from all views of a run and summarises what the
cluster was doing in that window — the drill-down an analyst performs
after the high-level charts point at a suspicious period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .session import AnalysisSession
from .table import Table

__all__ = ["WindowSummary", "zoom"]


def _overlap_mask(table: Table, start: float, end: float,
                  begin_col: str, end_col: str) -> np.ndarray:
    """Rows whose [begin, end] span intersects [start, end)."""
    begins = table[begin_col].astype(float)
    ends = table[end_col].astype(float)
    return (begins < end) & (ends >= start)


def _point_mask(table: Table, start: float, end: float,
                col: str) -> np.ndarray:
    times = table[col].astype(float)
    return (times >= start) & (times < end)


@dataclass
class WindowSummary:
    """Everything that happened in one time window."""

    start: float
    end: float
    tasks: Table
    transitions: Table
    io: Table
    comms: Table
    warnings: Table
    stats: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


def zoom(run, start: float, end: float) -> WindowSummary:
    """All records intersecting ``[start, end)`` plus summary stats."""
    if end <= start:
        raise ValueError("end must be after start")
    session = AnalysisSession.of(run)
    tasks = session.task_view()
    transitions = session.transition_view()
    io = session.io_view()
    comms = session.comm_view()
    warnings = session.warning_view()

    w_tasks = tasks.filter(_overlap_mask(tasks, start, end, "start", "stop")) \
        if len(tasks) else tasks
    w_transitions = transitions.filter(
        _point_mask(transitions, start, end, "timestamp")) \
        if len(transitions) else transitions
    w_io = io.filter(_overlap_mask(io, start, end, "start", "end")) \
        if len(io) else io
    w_comms = comms.filter(_overlap_mask(comms, start, end, "start", "stop")) \
        if len(comms) else comms
    w_warnings = warnings.filter(_point_mask(warnings, start, end, "time")) \
        if len(warnings) else warnings

    window = end - start
    busy_threads = len({
        (w_tasks["hostname"][i], w_tasks["thread_id"][i])
        for i in range(len(w_tasks))
    })
    stats = {
        "window": (start, end),
        "n_tasks_active": len(w_tasks),
        "n_transitions": len(w_transitions),
        "busy_threads": busy_threads,
        "prefixes_active": sorted(set(w_tasks["prefix"]))
        if len(w_tasks) else [],
        "io_ops": len(w_io),
        "io_bytes": int(np.sum(w_io["length"])) if len(w_io) else 0,
        "io_time": float(np.sum(w_io["duration"])) if len(w_io) else 0.0,
        "comm_count": len(w_comms),
        "comm_bytes": int(np.sum(w_comms["nbytes"])) if len(w_comms) else 0,
        "comm_time": float(np.sum(w_comms["duration"]))
        if len(w_comms) else 0.0,
        "warnings": len(w_warnings),
        "io_rate": (float(np.sum(w_io["length"])) / window)
        if len(w_io) else 0.0,
    }
    return WindowSummary(
        start=start, end=end, tasks=w_tasks, transitions=w_transitions,
        io=w_io, comms=w_comms, warnings=w_warnings, stats=stats,
    )
