"""Critical-path analysis: where does the latency come from?

Research question 3 of the paper asks what correlations "help us
investigate performance variability and understand the sources of
latency".  The sharpest latency question for a DAG workload is its
*critical path*: the dependency chain whose end-to-end span bounds the
wall time.  This module reconstructs it from the captured records —
submission dependencies (``task_added``), execution windows
(``task_run``) — and attributes each hop's *gap* (time between a
dependency finishing and its dependent starting) to scheduling,
transfer, and queueing delay using the communication records.
"""

from __future__ import annotations

from dataclasses import dataclass

from .session import AnalysisSession

__all__ = ["CriticalHop", "critical_path", "critical_path_summary"]


@dataclass(frozen=True)
class CriticalHop:
    """One task on the critical path, with its inbound gap."""

    key: str
    prefix: str
    worker: str
    start: float
    stop: float
    duration: float
    #: Time between the critical dependency's completion and this
    #: task's execution start (scheduling + fetch + queueing).
    gap: float
    #: Portion of the gap spent in a recorded transfer of that dep.
    transfer_time: float


def critical_path(run) -> list[CriticalHop]:
    """Longest finishing-time chain over the executed DAG."""
    session = AnalysisSession.of(run)
    chain = session.cached("critical_path",
                           lambda: _build_critical_path(session))
    return list(chain)


def _build_critical_path(session: AnalysisSession) -> list[CriticalHop]:
    tasks = session.task_view()
    deps = session.dependency_view()
    comms = session.comm_view()
    if len(tasks) == 0:
        return []

    info = {tasks["key"][i]: {
        "prefix": tasks["prefix"][i], "worker": tasks["worker"][i],
        "start": float(tasks["start"][i]), "stop": float(tasks["stop"][i]),
    } for i in range(len(tasks))}
    dep_map = {deps["key"][i]: list(deps["deps"][i])
               for i in range(len(deps))}
    # Transfer durations per (key, dst_worker).
    transfer = {}
    for i in range(len(comms)):
        transfer[(comms["key"][i], comms["dst_worker"][i])] = \
            float(comms["duration"][i])

    # The chain ends at the task that finished last; walk backwards
    # choosing, at each step, the dependency that finished latest (the
    # binding one).
    end_key = max(info, key=lambda k: info[k]["stop"])
    chain = []
    current = end_key
    while current is not None:
        record = info[current]
        executed_deps = [d for d in dep_map.get(current, [])
                         if d in info]
        if executed_deps:
            binding = max(executed_deps, key=lambda d: info[d]["stop"])
            gap = record["start"] - info[binding]["stop"]
        else:
            binding = None
            gap = record["start"]
        chain.append(CriticalHop(
            key=current, prefix=record["prefix"],
            worker=record["worker"], start=record["start"],
            stop=record["stop"],
            duration=record["stop"] - record["start"],
            gap=max(0.0, gap),
            transfer_time=transfer.get((binding, record["worker"]), 0.0)
            if binding else 0.0,
        ))
        current = binding
    chain.reverse()
    return chain


def critical_path_summary(run) -> dict:
    """Aggregate the chain: execution vs gap time, by task category."""
    chain = critical_path(run)
    if not chain:
        return {"length": 0, "span": 0.0, "execution": 0.0, "gap": 0.0,
                "transfer": 0.0, "by_prefix": {}, "chain": []}
    execution = sum(h.duration for h in chain)
    gap = sum(h.gap for h in chain)
    transfer = sum(h.transfer_time for h in chain)
    by_prefix: dict[str, float] = {}
    for hop in chain:
        by_prefix[hop.prefix] = by_prefix.get(hop.prefix, 0.0) \
            + hop.duration
    return {
        "length": len(chain),
        "span": chain[-1].stop - (chain[0].start - chain[0].gap),
        "execution": execution,
        "gap": gap,
        "transfer": transfer,
        "by_prefix": dict(sorted(by_prefix.items(),
                                 key=lambda kv: -kv[1])),
        "chain": chain,
    }
