"""Metadata-gap detection (research question 4).

"Can we identify gaps in the metadata collection?" (§I).  The paper's
lessons-learned section shows how gaps surface: records that cannot be
joined to anything (I/O with no owning task), quantities one source
reports that another cannot explain (DXT truncation), and events whose
cause lies in a layer that was not instrumented.  :func:`metadata_gaps`
audits one run for every such gap the framework can self-detect and
returns a structured report; an empty report means the identifier
chains of §V are complete for this run.
"""

from __future__ import annotations

from .correlate import fuse_io_with_tasks, unattributed_io
from .session import AnalysisSession

__all__ = ["metadata_gaps", "format_gap_report"]


def metadata_gaps(run) -> dict:
    """Audit one run for self-detectable metadata-collection gaps."""
    session = AnalysisSession.of(run)
    run = session.run
    tasks = session.task_view()
    io = session.io_view()
    transitions = session.transition_view()
    deps = session.dependency_view()
    comms = session.comm_view()

    gaps: dict = {}

    # 1. I/O that no task window claims (thread/time join failed).
    fused = session.cached("fused_io",
                           lambda: fuse_io_with_tasks(tasks, io))
    orphans = unattributed_io(fused)
    gaps["unattributed_io_ops"] = {
        "count": len(orphans),
        "of_total": len(io),
        "examples": [orphans.row(i)["file"]
                     for i in range(min(3, len(orphans)))],
    }

    # 2. DXT truncation: the I/O record stream is known-incomplete.
    truncated = run.darshan.any_truncated if run.darshan else False
    gaps["dxt_truncation"] = {
        "truncated": truncated,
        "dropped_segments": run.darshan.dropped_segments
        if run.darshan else 0,
    }

    # 3. Executed tasks with no submission record (or vice versa).
    executed = set(tasks["key"]) if len(tasks) else set()
    submitted = set(deps["key"]) if len(deps) else set()
    gaps["executed_without_submission"] = sorted(
        executed - submitted)[:10]
    # Submitted-but-never-run keys are normal mid-run, but after a
    # completed workflow they flag lost work (failures, leaks).
    never_ran = submitted - executed
    erred = {
        transitions["key"][i] for i in range(len(transitions))
        if transitions["finish_state"][i] == "erred"
    } if len(transitions) else set()
    gaps["submitted_never_ran"] = {
        "count": len(never_ran),
        "explained_by_errors": len(never_ran & erred),
        "unexplained": sorted(never_ran - erred)[:10],
    }

    # 4. Transfers of keys no task produced (ghost data movements).
    produced = executed
    moved = set(comms["key"]) if len(comms) else set()
    gaps["transfers_of_unknown_keys"] = sorted(moved - produced)[:10]

    # 5. Tasks whose execution has no memory transition recorded.
    memory_keys = {
        transitions["key"][i] for i in range(len(transitions))
        if transitions["finish_state"][i] == "memory"
    } if len(transitions) else set()
    gaps["runs_without_memory_transition"] = sorted(
        executed - memory_keys)[:10]

    # 6. Warning sources that are not registered workers.
    warnings = session.warning_view()
    known_workers = set(tasks["worker"]) if len(tasks) else set()
    unknown_sources = {
        warnings["source"][i] for i in range(len(warnings))
        if warnings["source"][i] not in known_workers
        and warnings["source"][i] != "scheduler"
    } if len(warnings) else set()
    gaps["warnings_from_unknown_sources"] = sorted(unknown_sources)[:10]

    gaps["clean"] = (
        gaps["unattributed_io_ops"]["count"] == 0
        and not truncated
        and not gaps["executed_without_submission"]
        and gaps["submitted_never_ran"]["count"]
        == gaps["submitted_never_ran"]["explained_by_errors"]
        and not gaps["transfers_of_unknown_keys"]
        and not gaps["runs_without_memory_transition"]
        and not gaps["warnings_from_unknown_sources"]
    )
    return gaps


def format_gap_report(gaps: dict) -> str:
    """Human-readable rendering of the gap audit."""
    lines = ["metadata-gap audit:"]
    status = "CLEAN" if gaps["clean"] else "GAPS FOUND"
    lines.append(f"  status: {status}")
    ua = gaps["unattributed_io_ops"]
    lines.append(f"  unattributed I/O ops: {ua['count']} / "
                 f"{ua['of_total']}")
    dxt = gaps["dxt_truncation"]
    lines.append(f"  DXT truncated: {dxt['truncated']} "
                 f"(dropped {dxt['dropped_segments']})")
    lines.append(f"  executed w/o submission record: "
                 f"{len(gaps['executed_without_submission'])}")
    snr = gaps["submitted_never_ran"]
    lines.append(f"  submitted but never ran: {snr['count']} "
                 f"({snr['explained_by_errors']} explained by errors)")
    lines.append(f"  transfers of unknown keys: "
                 f"{len(gaps['transfers_of_unknown_keys'])}")
    lines.append(f"  runs without memory transition: "
                 f"{len(gaps['runs_without_memory_transition'])}")
    lines.append(f"  warnings from unknown sources: "
                 f"{len(gaps['warnings_from_unknown_sources'])}")
    return "\n".join(lines)
