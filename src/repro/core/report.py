"""Plain-text rendering of tables and series for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and
figures report; this module provides the fixed-width renderer they
share.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .table import Table

__all__ = ["format_table", "format_records", "format_bar"]


def _fmt(value, ndigits: int = 4) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.{ndigits}g}"
    return str(value)


def format_records(records: Sequence[dict],
                   columns: Optional[Sequence[str]] = None,
                   title: Optional[str] = None) -> str:
    """Render a list of dicts as an aligned text table."""
    records = list(records)
    if not records:
        return (title + "\n" if title else "") + "(empty)"
    names = list(columns) if columns else list(records[0])
    cells = [[_fmt(r.get(n)) for n in names] for r in records]
    widths = [
        max(len(n), max(len(row[k]) for row in cells))
        for k, n in enumerate(names)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(n.ljust(w) for n, w in zip(names, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_table(table: Table, columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None, max_rows: int = 50) -> str:
    """Render a Table (truncated to ``max_rows``)."""
    records = table.head(max_rows).to_records()
    text = format_records(records, columns=columns or table.column_names,
                          title=title)
    if len(table) > max_rows:
        text += f"\n... ({len(table) - max_rows} more rows)"
    return text


def format_bar(label: str, value: float, scale: float,
               width: int = 40, err: Optional[float] = None) -> str:
    """One ASCII bar of a normalized bar chart (Fig.-3 style)."""
    filled = int(round(width * value / scale)) if scale > 0 else 0
    filled = max(0, min(width, filled))
    bar = "#" * filled + "." * (width - filled)
    err_text = f" ±{err:.3f}" if err is not None else ""
    return f"{label:>14} |{bar}| {value:.3f}{err_text}"
