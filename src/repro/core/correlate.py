"""Cross-source correlation: attributing I/O operations to tasks.

This is the analysis-side half of the paper's key mechanism: "both
Darshan and Dask logs contain pthread ID and timestamps that can be
used to align specific events" (§III-D).  Because a Dask task owns its
worker thread for the whole execution, a DXT segment belongs to the
task that (a) ran on the same host with the same pthread ID and
(b) whose execution window contains the segment.

The matcher sorts each (hostname, thread) lane once and binary-searches
task windows, so fusing stays near-linear in the number of records.
"""

from __future__ import annotations

import bisect

import numpy as np

from .table import Table

__all__ = ["fuse_io_with_tasks", "per_task_io", "unattributed_io"]


def _task_lanes(tasks: Table) -> dict:
    """Per-(hostname, thread_id) sorted task windows."""
    lanes: dict = {}
    for i in range(len(tasks)):
        lane = (tasks["hostname"][i], tasks["thread_id"][i])
        lanes.setdefault(lane, []).append(
            (float(tasks["start"][i]), float(tasks["stop"][i]), i)
        )
    for lane in lanes.values():
        lane.sort()
    return lanes


def fuse_io_with_tasks(tasks: Table, io: Table) -> Table:
    """The I/O view extended with task attribution columns.

    Adds ``key``, ``prefix``, ``graph_index``, ``worker`` (``None``
    where no task window matches, e.g. I/O from non-task code paths).
    """
    lanes = _task_lanes(tasks)
    keys, prefixes, graphs, workers = [], [], [], []
    for j in range(len(io)):
        lane = lanes.get((io["hostname"][j], io["pthread_id"][j]))
        match = None
        if lane:
            start = float(io["start"][j])
            end = float(io["end"][j])
            pos = bisect.bisect_right(lane, (start, float("inf"), -1)) - 1
            if pos >= 0:
                t_start, t_stop, index = lane[pos]
                # Allow the op to end exactly at the task boundary.
                if start >= t_start and end <= t_stop + 1e-9:
                    match = index
        if match is None:
            keys.append(None)
            prefixes.append(None)
            graphs.append(-1)
            workers.append(None)
        else:
            keys.append(tasks["key"][match])
            prefixes.append(tasks["prefix"][match])
            graphs.append(tasks["graph_index"][match])
            workers.append(tasks["worker"][match])
    return (
        io.with_column("key", keys)
        .with_column("prefix", prefixes)
        .with_column("graph_index", graphs)
        .with_column("worker", workers)
    )


def per_task_io(fused: Table) -> Table:
    """Aggregate the fused view per task key.

    Columns: key, n_ops, n_reads, n_writes, bytes_read, bytes_written,
    io_time.
    """
    attributed = fused.filter(
        np.array([k is not None for k in fused["key"]])
    )
    rows: dict = {}
    for i in range(len(attributed)):
        key = attributed["key"][i]
        row = rows.setdefault(key, {
            "key": key, "n_ops": 0, "n_reads": 0, "n_writes": 0,
            "bytes_read": 0, "bytes_written": 0, "io_time": 0.0,
        })
        row["n_ops"] += 1
        length = int(attributed["length"][i])
        if attributed["op"][i] == "read":
            row["n_reads"] += 1
            row["bytes_read"] += length
        else:
            row["n_writes"] += 1
            row["bytes_written"] += length
        row["io_time"] += float(attributed["duration"][i])
    return Table.from_records(list(rows.values()), columns=[
        "key", "n_ops", "n_reads", "n_writes", "bytes_read",
        "bytes_written", "io_time",
    ])


def unattributed_io(fused: Table) -> Table:
    """Segments no task window claimed — the paper's 'gaps in the
    metadata collection' (research question 4)."""
    return fused.filter(np.array([k is None for k in fused["key"]]))
