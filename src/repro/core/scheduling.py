"""Cross-run scheduling comparison.

Among the analyses the paper lists but cannot fully show: "comparison
of scheduling strategies over runs such as whether tasks were scheduled
in the same order or not" (§IV-D).  Given the task views of two runs,
these functions quantify how differently the dynamic scheduler behaved:
what fraction of shared tasks landed on the same worker, and how far
the execution order drifted (normalised Kendall-tau distance over the
shared keys).
"""

from __future__ import annotations

from .table import Table

__all__ = ["placement_agreement", "order_distance", "compare_runs"]


def _key_order(view: Table) -> list[str]:
    """Task keys in execution-start order."""
    ordered = view.sort_by("start")
    return list(ordered["key"])


def _key_worker(view: Table) -> dict[str, str]:
    return {view["key"][i]: view["worker"][i] for i in range(len(view))}


def placement_agreement(a: Table, b: Table) -> float:
    """Fraction of shared keys that ran on the same worker address."""
    wa, wb = _key_worker(a), _key_worker(b)
    shared = set(wa) & set(wb)
    if not shared:
        return 0.0
    same = sum(1 for k in shared if wa[k] == wb[k])
    return same / len(shared)


def order_distance(a: Table, b: Table) -> float:
    """Normalised Kendall-tau distance between execution orders.

    0.0 = identical order of the shared keys, 1.0 = exactly reversed.
    Uses a merge-sort inversion count, O(n log n).
    """
    order_a = [k for k in _key_order(a)]
    pos_b = {k: i for i, k in enumerate(_key_order(b))}
    seq = [pos_b[k] for k in order_a if k in pos_b]
    n = len(seq)
    if n < 2:
        return 0.0
    inversions = _count_inversions(seq)
    return inversions / (n * (n - 1) / 2)


def _count_inversions(seq: list[int]) -> int:
    if len(seq) < 2:
        return 0
    mid = len(seq) // 2
    left, right = seq[:mid], seq[mid:]
    count = _count_inversions(left) + _count_inversions(right)
    merged = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
            count += len(left) - i
    merged.extend(left[i:])
    merged.extend(right[j:])
    seq[:] = merged
    return count


def compare_runs(views: list[Table]) -> Table:
    """Pairwise scheduling comparison over repetitions.

    Columns: run_a, run_b, placement_agreement, order_distance.
    """
    rows = []
    for i in range(len(views)):
        for j in range(i + 1, len(views)):
            rows.append({
                "run_a": i, "run_b": j,
                "placement_agreement": placement_agreement(
                    views[i], views[j]),
                "order_distance": order_distance(views[i], views[j]),
            })
    return Table.from_records(rows, columns=[
        "run_a", "run_b", "placement_agreement", "order_distance",
    ])
