"""SVG renderers for the paper's figures.

PERFRECUP is described as a "data aggregation, analysis, and
*visualization* engine" (§III-D).  Plotting libraries are not available
in this environment, so this module emits standalone SVG documents for
each figure directly from the analysis series:

* :func:`fig3_svg` — grouped normalized phase bars with error bars;
* :func:`fig4_svg` — per-thread I/O timeline (red reads / blue writes,
  opacity ∝ relative size);
* :func:`fig5_svg` — communication duration vs message size scatter,
  coloured by node locality;
* :func:`fig6_svg` — parallel-coordinate chart with a white→red
  duration colour scale;
* :func:`fig7_svg` — warning histogram over time, one bar series per
  warning kind.

Each function takes the same Table/stats objects the text benches
print and returns an SVG string (``write_svg`` saves it).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

import numpy as np

from .table import Table

__all__ = ["SVGCanvas", "fig3_svg", "fig4_svg", "fig5_svg", "fig6_svg",
           "fig7_svg", "heatmap_svg", "write_svg"]

READ_COLOR = "#c62828"       # red
WRITE_COLOR = "#1565c0"      # blue
INTRA_COLOR = "#2e7d32"      # green
INTER_COLOR = "#e65100"      # orange
PHASE_COLORS = {
    "io": "#c62828", "communication": "#e65100",
    "computation": "#1565c0", "total": "#424242",
}


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


class SVGCanvas:
    """Minimal SVG document builder with plot-area helpers."""

    def __init__(self, width: int = 820, height: int = 460,
                 margin: tuple[int, int, int, int] = (40, 20, 50, 70),
                 title: str = ""):
        self.width = width
        self.height = height
        self.top, self.right, self.bottom, self.left = margin
        self.elements: list[str] = []
        if title:
            self.text(width / 2, self.top / 2 + 5, title, size=14,
                      anchor="middle", weight="bold")

    # plot area geometry ------------------------------------------------
    @property
    def plot_w(self) -> float:
        return self.width - self.left - self.right

    @property
    def plot_h(self) -> float:
        return self.height - self.top - self.bottom

    def x(self, frac: float) -> float:
        return self.left + frac * self.plot_w

    def y(self, frac: float) -> float:
        """frac=0 bottom, frac=1 top."""
        return self.top + (1 - frac) * self.plot_h

    # primitives ----------------------------------------------------------
    def rect(self, x, y, w, h, fill, opacity=1.0, stroke="none") -> None:
        self.elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}" fill="{fill}" fill-opacity="{opacity:.3f}" '
            f'stroke="{stroke}"/>'
        )

    def line(self, x1, y1, x2, y2, stroke="#000", width=1.0,
             opacity=1.0) -> None:
        self.elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" '
            f'y2="{y2:.2f}" stroke="{stroke}" stroke-width="{width:.2f}" '
            f'stroke-opacity="{opacity:.3f}"/>'
        )

    def circle(self, cx, cy, r, fill, opacity=1.0) -> None:
        self.elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" '
            f'fill="{fill}" fill-opacity="{opacity:.3f}"/>'
        )

    def polyline(self, points: Sequence[tuple[float, float]], stroke,
                 width=1.0, opacity=1.0) -> None:
        path = " ".join(f"{px:.2f},{py:.2f}" for px, py in points)
        self.elements.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width:.2f}" stroke-opacity="{opacity:.3f}"/>'
        )

    def text(self, x, y, content, size=11, anchor="start",
             weight="normal", color="#222") -> None:
        self.elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'text-anchor="{anchor}" font-weight="{weight}" '
            f'fill="{color}" font-family="sans-serif">'
            f"{_esc(content)}</text>"
        )

    def axes(self, x_label: str = "", y_label: str = "") -> None:
        self.line(self.left, self.top, self.left,
                  self.top + self.plot_h, "#444")
        self.line(self.left, self.top + self.plot_h,
                  self.left + self.plot_w, self.top + self.plot_h, "#444")
        if x_label:
            self.text(self.left + self.plot_w / 2,
                      self.height - 10, x_label, anchor="middle")
        if y_label:
            cx, cy = 15, self.top + self.plot_h / 2
            self.elements.append(
                f'<text x="{cx}" y="{cy}" font-size="11" '
                f'text-anchor="middle" fill="#222" '
                f'font-family="sans-serif" '
                f'transform="rotate(-90 {cx} {cy})">{_esc(y_label)}</text>'
            )

    def render(self) -> str:
        body = "\n".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>\n{body}\n</svg>\n'
        )


def write_svg(svg: str, path: str) -> str:
    """Persist an SVG document; returns the path written."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)
    return path


# ---------------------------------------------------------------------------
def fig3_svg(stats_by_workflow: dict) -> str:
    """Grouped normalized phase bars with error bars (Fig. 3).

    ``stats_by_workflow`` maps workflow name → the dict returned by
    :func:`~repro.core.variability.phase_variability`.
    """
    canvas = SVGCanvas(title="Relative time per workflow "
                             "(normalized to mean wall time)")
    canvas.axes(y_label="normalized time")
    names = list(stats_by_workflow)
    phases = ("io", "communication", "computation", "total")
    # Cap display at the max normalized value (compute may exceed 1).
    peak = max(
        stats["normalized"][p] + stats["normalized_err"][p]
        for stats in stats_by_workflow.values() for p in phases
    ) or 1.0
    group_w = 1.0 / max(1, len(names))
    bar_w = group_w / (len(phases) + 1)
    for g, name in enumerate(names):
        stats = stats_by_workflow[name]
        for b, phase in enumerate(phases):
            value = stats["normalized"][phase] / peak
            err = stats["normalized_err"][phase] / peak
            x0 = canvas.x(g * group_w + (b + 0.5) * bar_w)
            y_top = canvas.y(value)
            canvas.rect(x0, y_top, canvas.plot_w * bar_w * 0.9,
                        canvas.y(0) - y_top, PHASE_COLORS[phase],
                        opacity=0.85)
            # Error bar.
            xc = x0 + canvas.plot_w * bar_w * 0.45
            canvas.line(xc, canvas.y(min(1, value + err)),
                        xc, canvas.y(max(0, value - err)), "#000", 1.2)
        canvas.text(canvas.x((g + 0.5) * group_w),
                    canvas.y(0) + 16, name, anchor="middle")
    # Legend.
    for i, phase in enumerate(phases):
        lx = canvas.left + 10 + i * 130
        canvas.rect(lx, canvas.top + 4, 12, 12, PHASE_COLORS[phase])
        canvas.text(lx + 16, canvas.top + 14, phase)
    return canvas.render()


def fig4_svg(timeline: Table, title: str = "Per-thread I/O over time"
             ) -> str:
    """Per-thread I/O timeline (Fig. 4)."""
    canvas = SVGCanvas(title=title)
    canvas.axes(x_label="elapsed time (s)", y_label="thread")
    if len(timeline) == 0:
        return canvas.render()
    t_max = float(np.max(timeline["start"].astype(float)
                         + timeline["duration"].astype(float))) or 1.0
    n_lanes = int(np.max(timeline["thread_rank"])) + 1
    lane_h = 1.0 / max(1, n_lanes)
    for i in range(len(timeline)):
        rank = int(timeline["thread_rank"][i])
        start = float(timeline["start"][i]) / t_max
        dur = max(float(timeline["duration"][i]) / t_max, 0.002)
        color = READ_COLOR if timeline["op"][i] == "read" else WRITE_COLOR
        opacity = 0.25 + 0.75 * float(timeline["rel_size"][i])
        y_frac = (rank + 0.25) * lane_h
        canvas.rect(canvas.x(start), canvas.y(1 - y_frac),
                    canvas.plot_w * dur, canvas.plot_h * lane_h * 0.5,
                    color, opacity=opacity)
    for i, (label, color) in enumerate(
        (("read", READ_COLOR), ("write", WRITE_COLOR))
    ):
        lx = canvas.left + 10 + i * 90
        canvas.rect(lx, canvas.top + 4, 12, 12, color)
        canvas.text(lx + 16, canvas.top + 14, label)
    # X ticks.
    for frac in (0, 0.25, 0.5, 0.75, 1.0):
        canvas.text(canvas.x(frac), canvas.y(0) + 14,
                    f"{frac * t_max:.1f}", anchor="middle", size=9)
    return canvas.render()


def fig5_svg(scatter: Table, title: str = "Communication time vs size"
             ) -> str:
    """Communication scatter, log-log, coloured by locality (Fig. 5)."""
    canvas = SVGCanvas(title=title)
    canvas.axes(x_label="message size (bytes, log)",
                y_label="duration (s, log)")
    if len(scatter) == 0:
        return canvas.render()
    sizes = np.maximum(scatter["nbytes"].astype(float), 1.0)
    durations = np.maximum(scatter["duration"].astype(float), 1e-9)
    lx, ly = np.log10(sizes), np.log10(durations)
    x_lo, x_hi = float(lx.min()), float(max(lx.max(), lx.min() + 1e-9))
    y_lo, y_hi = float(ly.min()), float(max(ly.max(), ly.min() + 1e-9))
    span_x = (x_hi - x_lo) or 1.0
    span_y = (y_hi - y_lo) or 1.0
    for i in range(len(scatter)):
        fx = (float(lx[i]) - x_lo) / span_x
        fy = (float(ly[i]) - y_lo) / span_y
        color = INTRA_COLOR if scatter["same_node"][i] else INTER_COLOR
        canvas.circle(canvas.x(fx), canvas.y(fy), 2.6, color, opacity=0.6)
    for i, (label, color) in enumerate(
        (("intra-node", INTRA_COLOR), ("inter-node", INTER_COLOR))
    ):
        lx_px = canvas.left + 10 + i * 110
        canvas.circle(lx_px, canvas.top + 10, 5, color)
        canvas.text(lx_px + 10, canvas.top + 14, label)
    return canvas.render()


def _duration_color(frac: float) -> str:
    """White → red scale, like the paper's Fig. 6."""
    frac = min(1.0, max(0.0, frac))
    g = int(235 * (1 - frac) + 30 * frac)
    b = int(235 * (1 - frac) + 40 * frac)
    return f"rgb(220,{g},{b})" if frac > 0 else "rgb(225,225,225)"


def fig6_svg(coords: Table, title: str = "Parallel coordinates of tasks"
             ) -> str:
    """Parallel-coordinate chart (Fig. 6)."""
    canvas = SVGCanvas(width=900, title=title)
    if len(coords) == 0:
        return canvas.render()
    categories = sorted(set(coords["category"]))
    cat_index = {c: i for i, c in enumerate(categories)}
    axes = ("elapsed", "category", "thread_rank", "size_mb", "duration")

    def axis_fraction(name: str, i: int) -> float:
        if name == "category":
            value = cat_index[coords["category"][i]]
            hi = max(1, len(categories) - 1)
            return value / hi
        column = coords[name].astype(float)
        lo, hi = float(np.min(column)), float(np.max(column))
        span = (hi - lo) or 1.0
        return (float(column[i]) - lo) / span

    durations = coords["duration"].astype(float)
    d_hi = float(np.max(durations)) or 1.0
    x_positions = [k / (len(axes) - 1) for k in range(len(axes))]
    # Draw lines: short tasks first so the red (long) ones overlay.
    order = np.argsort(durations)
    for i in order:
        points = [
            (canvas.x(x_positions[k]),
             canvas.y(axis_fraction(name, int(i))))
            for k, name in enumerate(axes)
        ]
        frac = float(durations[int(i)]) / d_hi
        canvas.polyline(points, _duration_color(frac),
                        width=0.8 + 1.8 * frac,
                        opacity=0.35 + 0.6 * frac)
    for k, name in enumerate(axes):
        px = canvas.x(x_positions[k])
        canvas.line(px, canvas.top, px, canvas.top + canvas.plot_h,
                    "#555", 1.2)
        canvas.text(px, canvas.height - 18, name, anchor="middle")
    return canvas.render()


def heatmap_svg(heatmap, title: str = "I/O intensity over time "
                                      "(Darshan HEATMAP)") -> str:
    """Job-level read/write intensity bars from a HEATMAP module."""
    import numpy as _np

    canvas = SVGCanvas(height=320, title=title)
    canvas.axes(x_label="time (s)", y_label="bytes per bin")
    if heatmap is None:
        return canvas.render()
    reads = _np.asarray(heatmap.read_bytes, dtype=float)
    writes = _np.asarray(heatmap.write_bytes, dtype=float)
    # Trim trailing empty bins for a tight x-axis.
    nonzero = _np.nonzero(reads + writes)[0]
    last = int(nonzero[-1]) + 1 if len(nonzero) else 1
    reads, writes = reads[:last], writes[:last]
    peak = float(max(reads.max() if len(reads) else 0,
                     writes.max() if len(writes) else 0)) or 1.0
    width = 1.0 / last
    for b in range(last):
        x0 = canvas.x(b * width)
        half = canvas.plot_w * width * 0.42
        if reads[b] > 0:
            y_top = canvas.y(reads[b] / peak)
            canvas.rect(x0, y_top, half, canvas.y(0) - y_top,
                        READ_COLOR, opacity=0.85)
        if writes[b] > 0:
            y_top = canvas.y(writes[b] / peak)
            canvas.rect(x0 + half, y_top, half, canvas.y(0) - y_top,
                        WRITE_COLOR, opacity=0.85)
    for i, (label, color) in enumerate(
        (("read", READ_COLOR), ("write", WRITE_COLOR))
    ):
        lx = canvas.left + 10 + i * 90
        canvas.rect(lx, canvas.top + 4, 12, 12, color)
        canvas.text(lx + 16, canvas.top + 14, label)
    for frac in (0, 0.5, 1.0):
        canvas.text(canvas.x(frac), canvas.y(0) + 14,
                    f"{frac * last * heatmap.bin_width:.1f}",
                    anchor="middle", size=9)
    return canvas.render()


def fig7_svg(hist: Table, title: str = "Warning distribution over time"
             ) -> str:
    """Warning histogram, one bar colour per kind (Fig. 7)."""
    canvas = SVGCanvas(title=title)
    canvas.axes(x_label="time bucket (s)", y_label="warnings")
    if len(hist) == 0:
        return canvas.render()
    kinds = sorted(set(hist["kind"]))
    palette = ["#c62828", "#1565c0", "#2e7d32", "#6a1b9a"]
    color_of = {kind: palette[i % len(palette)]
                for i, kind in enumerate(kinds)}
    buckets = sorted(set(float(b) for b in hist["bucket_start"]))
    counts = {(float(hist["bucket_start"][i]), hist["kind"][i]):
              int(hist["count"][i]) for i in range(len(hist))}
    peak = max(counts.values()) or 1
    group_w = 1.0 / max(1, len(buckets))
    bar_w = group_w / (len(kinds) + 1)
    for g, bucket in enumerate(buckets):
        for b, kind in enumerate(kinds):
            count = counts.get((bucket, kind), 0)
            if count == 0:
                continue
            x0 = canvas.x(g * group_w + (b + 0.5) * bar_w)
            y_top = canvas.y(count / peak)
            canvas.rect(x0, y_top, canvas.plot_w * bar_w * 0.9,
                        canvas.y(0) - y_top, color_of[kind], opacity=0.9)
        if len(buckets) <= 24 or g % max(1, len(buckets) // 12) == 0:
            canvas.text(canvas.x((g + 0.5) * group_w), canvas.y(0) + 14,
                        f"{bucket:.0f}", anchor="middle", size=9)
    for i, kind in enumerate(kinds):
        lx = canvas.left + 10 + i * 220
        canvas.rect(lx, canvas.top + 4, 12, 12, color_of[kind])
        canvas.text(lx + 16, canvas.top + 14, kind)
    return canvas.render()
