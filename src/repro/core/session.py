"""The memoized analysis facade: one coherent API over PERFRECUP.

The paper's value proposition is *interactive* slicing of multi-source
run data (§III-D, §V): the same views are requested over and over —
per figure, per zoom window, per repetition of a variability study.
:class:`AnalysisSession` makes that cheap.  It wraps one immutable
:class:`~repro.core.ingest.RunData` and caches

* every named view (``task``, ``io``, ``comm``, ...) built by the
  columnar builders in :mod:`repro.core.views`, and
* arbitrary derived analyses via :meth:`cached`, keyed by name —

so a 50-repetition XGBoost study pays each view's construction cost
once per run instead of once per analysis.  Caching is safe because a
run, once loaded, never changes; if you must mutate, load a fresh
``RunData``.

Multi-run workloads fan out over :mod:`concurrent.futures`:
:func:`sessions_for` loads many sources in parallel and
:func:`map_sessions` applies an analysis to each session concurrently,
always returning results in input order so downstream statistics stay
deterministic.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Optional, Sequence

from .ingest import RunData
from .table import Table
from .views import VIEW_BUILDERS, VIEW_NAMES

__all__ = ["AnalysisSession", "sessions_for", "map_sessions"]


class AnalysisSession:
    """Cached, columnar analysis facade over one immutable run.

    Use :meth:`AnalysisSession.of` to get the canonical session of a
    ``RunData`` (one per run object, created on first use)::

        session = AnalysisSession.of(result.data)
        tasks = session.task_view()       # built once
        tasks is session.task_view()      # True — cache hit
        breakdown = session.phase_breakdown()
    """

    #: The nine canonical view names, in build order.
    VIEW_NAMES = VIEW_NAMES

    def __init__(self, run: RunData):
        self.run = run
        self._views: dict[str, Table] = {}
        self._derived: dict[str, object] = {}
        # One reentrant lock guards both caches: derived analyses build
        # views, and prefetch may run from several threads.
        self._lock = threading.RLock()

    # -- construction ------------------------------------------------------
    @classmethod
    def of(cls, source, client=None) -> "AnalysisSession":
        """The canonical session for ``source``.

        ``source`` may be an existing session (returned unchanged), a
        :class:`RunData` (its per-object session is created on first
        call and reused after), or anything :meth:`RunData.load`
        accepts (run-directory path, live ``InstrumentedRun``).
        """
        if isinstance(source, cls):
            return source
        if not isinstance(source, RunData):
            data = getattr(source, "data", None)
            source = data if isinstance(data, RunData) \
                else RunData.load(source, client=client)
        session = getattr(source, "_analysis_session", None)
        if session is None:
            session = cls(source)
            source._analysis_session = session
        return session

    # -- views -------------------------------------------------------------
    def view(self, name: str) -> Table:
        """The named view, built on first request and cached."""
        table = self._views.get(name)
        if table is None:
            try:
                builder = VIEW_BUILDERS[name]
            except KeyError:
                raise KeyError(
                    f"unknown view {name!r}; have {list(VIEW_NAMES)}"
                ) from None
            with self._lock:
                table = self._views.get(name)
                if table is None:
                    table = builder(self.run)
                    self._views[name] = table
        return table

    def task_view(self) -> Table:
        return self.view("task")

    def transition_view(self) -> Table:
        return self.view("transition")

    def io_view(self) -> Table:
        return self.view("io")

    def comm_view(self) -> Table:
        return self.view("comm")

    def warning_view(self) -> Table:
        return self.view("warning")

    def spill_view(self) -> Table:
        return self.view("spill")

    def steal_view(self) -> Table:
        return self.view("steal")

    def dependency_view(self) -> Table:
        return self.view("dependency")

    def log_view(self) -> Table:
        return self.view("log")

    def metrics_view(self) -> Table:
        """Sampled telemetry series (time/metric/kind/labels/value).

        Empty when the run executed without a telemetry bundle.  Not
        one of the nine canonical provenance views — telemetry is
        optional — but cached with the same discipline.
        """
        return self.cached("metrics_view", lambda: Table.from_records(
            self.run.metrics,
            columns=("time", "metric", "kind", "labels", "value"),
        ))

    def resilience_view(self) -> Table:
        """Injected-fault rows (fault_id/kind/target/worker/...).

        Empty when the run executed without a fault schedule.  Like
        :meth:`metrics_view`, not one of the nine canonical views —
        fault injection is optional — but cached identically.
        """
        from .resilience import resilience_view
        return resilience_view(self)

    def resilience_report(self) -> dict:
        """Cached recovery statistics (retries, recomputes, TTR)."""
        from .resilience import resilience_report
        return resilience_report(self)

    def data_plane_view(self) -> Table:
        """Proxy put/resolve/evict rows (key/backend/worker/...).

        Empty when the run executed without the pass-by-reference data
        plane (:mod:`repro.proxystore`).  Like :meth:`resilience_view`,
        not one of the nine canonical views — the data plane is
        optional — but cached identically.
        """
        from .data_plane import data_plane_view
        return data_plane_view(self)

    def data_plane_report(self) -> dict:
        """Cached per-backend traffic/saved-time accounting."""
        from .data_plane import data_plane_report
        return data_plane_report(self)

    def all_views(self, workers: Optional[int] = None) -> dict[str, Table]:
        """All nine views as ``{name: Table}`` (optionally prefetched
        by a thread pool — useful right after loading a large run)."""
        if workers is not None and workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                tables = list(pool.map(self.view, VIEW_NAMES))
            return dict(zip(VIEW_NAMES, tables))
        return {name: self.view(name) for name in VIEW_NAMES}

    def prefetch(self, workers: Optional[int] = None) -> "AnalysisSession":
        """Build (and cache) every view; returns ``self`` for chaining."""
        self.all_views(workers=workers)
        return self

    # -- derived analyses --------------------------------------------------
    def cached(self, key: str, build: Callable[[], object]):
        """Memoize an arbitrary derived analysis under ``key``.

        ``build`` runs at most once per session; later calls return the
        stored object.  Analysis modules use this to make their free
        functions session-aware (e.g. ``phase_breakdown``).
        """
        marker = object()
        value = self._derived.get(key, marker)
        if value is marker:
            with self._lock:
                value = self._derived.get(key, marker)
                if value is marker:
                    value = build()
                    self._derived[key] = value
        return value

    def phase_breakdown(self):
        """Cached Fig.-3 phase decomposition of this run."""
        from .phases import phase_breakdown
        return phase_breakdown(self)

    def critical_path_summary(self) -> dict:
        """Cached critical-path aggregate of this run."""
        from .critical_path import critical_path_summary
        return critical_path_summary(self)

    def metadata_gaps(self) -> dict:
        """Cached metadata-gap audit of this run."""
        from .gaps import metadata_gaps
        return metadata_gaps(self)

    def cache_info(self) -> dict:
        """Cache occupancy (views built, derived analyses stored)."""
        return {
            "views_built": sorted(self._views),
            "derived_keys": sorted(self._derived),
        }

    @property
    def wall_time(self) -> float:
        return self.run.wall_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<AnalysisSession run_index={self.run.run_index} "
                f"views={len(self._views)}/{len(VIEW_NAMES)} cached>")


# ---------------------------------------------------------------------------
# multi-run fan-out
# ---------------------------------------------------------------------------

def sessions_for(sources: Iterable,
                 workers: Optional[int] = None) -> list["AnalysisSession"]:
    """Sessions for many sources, loaded concurrently when asked.

    ``sources`` elements may be anything :meth:`AnalysisSession.of`
    accepts (paths, ``RunData``, ``RunResult``-likes, sessions).  With
    ``workers > 1`` the loads run on a thread pool; results always come
    back in input order.
    """
    sources = list(sources)
    if workers is not None and workers > 1 and len(sources) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(AnalysisSession.of, sources))
    return [AnalysisSession.of(source) for source in sources]


def map_sessions(fn: Callable[["AnalysisSession"], object],
                 sources: Sequence,
                 workers: Optional[int] = None) -> list:
    """Apply ``fn`` to the session of every source, in input order.

    The fan-out primitive behind ``perfrecup compare --workers`` and
    the variability workloads: loads (if needed) and analyses each run
    on a thread pool, preserving input order in the result list.
    """
    sessions = sessions_for(sources, workers=workers)
    if workers is not None and workers > 1 and len(sessions) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, sessions))
    return [fn(session) for session in sessions]
