"""Per-thread I/O timelines (the Fig.-4 analysis).

"Figure 4 presents the I/O characteristics of the ImageProcessing
workflow across threads, as the workflow progresses.  The x-axis shows
the application's elapsed time, the y-axis shows the thread ID,
horizontal lines indicate I/O duration, the color represents the type
of the I/O ... and the opacity of the lines represents relative I/O
size" (§IV-D1).  :func:`io_timeline` emits exactly those series;
:func:`detect_phases` recovers the read/write burst structure the
paper reads off the chart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .table import Table

__all__ = ["io_timeline", "detect_phases", "IOPhase"]


def io_timeline(io: Table) -> Table:
    """The plottable Fig.-4 series.

    Columns: thread_rank (dense y position), pthread_id, hostname, op,
    start, duration, length, rel_size (0–1 opacity).
    """
    if len(io) == 0:
        return Table({c: [] for c in (
            "thread_rank", "pthread_id", "hostname", "op", "start",
            "duration", "length", "rel_size",
        )})
    thread_keys = sorted(
        {(io["hostname"][i], io["pthread_id"][i]) for i in range(len(io))}
    )
    rank_of = {key: rank for rank, key in enumerate(thread_keys)}
    max_len = max(1, int(np.max(io["length"])))
    rows = []
    for i in range(len(io)):
        key = (io["hostname"][i], io["pthread_id"][i])
        rows.append({
            "thread_rank": rank_of[key],
            "pthread_id": io["pthread_id"][i],
            "hostname": io["hostname"][i],
            "op": io["op"][i],
            "start": float(io["start"][i]),
            "duration": float(io["duration"][i]),
            "length": int(io["length"][i]),
            "rel_size": int(io["length"][i]) / max_len,
        })
    table = Table.from_records(rows, columns=[
        "thread_rank", "pthread_id", "hostname", "op", "start",
        "duration", "length", "rel_size",
    ])
    return table.sort_by("start")


@dataclass(frozen=True)
class IOPhase:
    """One burst of same-direction I/O activity."""

    op: str
    start: float
    end: float
    n_ops: int
    bytes: int

    @property
    def duration(self) -> float:
        return self.end - self.start


def detect_phases(io: Table, gap: float = 2.0,
                  min_ops: int = 3) -> list[IOPhase]:
    """Segment the run into read/write bursts.

    Ops of the same direction separated by less than ``gap`` seconds
    belong to one phase; phases with fewer than ``min_ops`` operations
    are dropped as noise.  The ImageProcessing workflow should produce
    alternating read/write phases, one pair per submitted task graph.
    """
    if len(io) == 0:
        return []
    order = np.argsort(io["start"], kind="stable")
    phases: list[IOPhase] = []
    current = None
    for i in order:
        op = io["op"][i]
        start = float(io["start"][i])
        end = float(io["end"][i])
        length = int(io["length"][i])
        if (current is None or op != current["op"]
                or start - current["end"] > gap):
            if current is not None and current["n"] >= min_ops:
                phases.append(IOPhase(
                    op=current["op"], start=current["start"],
                    end=current["end"], n_ops=current["n"],
                    bytes=current["bytes"],
                ))
            current = {"op": op, "start": start, "end": end, "n": 0,
                       "bytes": 0}
        current["end"] = max(current["end"], end)
        current["n"] += 1
        current["bytes"] += length
    if current is not None and current["n"] >= min_ops:
        phases.append(IOPhase(
            op=current["op"], start=current["start"], end=current["end"],
            n_ops=current["n"], bytes=current["bytes"],
        ))
    return phases
