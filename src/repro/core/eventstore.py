"""Columnar event store: the PERFRECUP hot-path ingest layer.

The Mofka provenance stream arrives as one time-ordered list of
metadata dicts.  Every view builder needs only the records of *one*
event type, and every derived column (durations, byte totals) is plain
array math over a handful of fields — yet the original implementation
re-scanned the full list per view call and built per-row dicts.

:class:`EventStore` does the O(N) work exactly once: a single pass
partitions the stream by ``type`` (preserving stream order inside each
partition), and per-field NumPy columns are materialised lazily, one
array per ``(type, field)``, then cached.  Events are treated as
immutable once a store exists — the same contract that makes the
:class:`~repro.core.session.AnalysisSession` view cache safe.
"""

from __future__ import annotations

from collections import defaultdict
from operator import itemgetter
from typing import Iterable, Optional, Sequence

import numpy as np

from .table import Table, as_column

__all__ = ["EventStore", "columns_from_records"]


def _field_values(records: Sequence[dict], field: str) -> list:
    """All values of one field, in record order.

    ``map(itemgetter(...))`` runs the extraction loop in C; the
    ``dict.get`` fallback only triggers when some record lacks the
    field, and keeps the "missing → None" contract of the original
    per-row ``record.get`` path.
    """
    try:
        return list(map(itemgetter(field), records))
    except KeyError:
        return [record.get(field) for record in records]


def _value_lists(records: Sequence[dict],
                 fields: Sequence[str]) -> dict[str, Sequence]:
    """Per-field value sequences via one pass over the records.

    A multi-field ``itemgetter`` yields one tuple per record and
    ``zip(*...)`` transposes them — both C loops, so the records are
    walked once for all fields instead of once per field.  Falls back
    to per-field extraction (missing → ``None``) when any record lacks
    a field.
    """
    if not records:
        return {field: () for field in fields}
    if len(fields) == 1:
        return {fields[0]: _field_values(records, fields[0])}
    try:
        rows = list(map(itemgetter(*fields), records))
    except KeyError:
        return {field: _field_values(records, field) for field in fields}
    return dict(zip(fields, zip(*rows)))


def columns_from_records(records: Sequence[dict],
                         fields: Iterable[str]) -> dict[str, np.ndarray]:
    """One NumPy column per field, pulled out of a record-dict list.

    Missing fields become ``None`` cells (matching ``dict.get``), so the
    result is exactly what :meth:`Table.from_records` would have built —
    minus the per-row intermediate dicts.
    """
    records = list(records)
    fields = list(fields)
    values = _value_lists(records, fields)
    return {field: as_column(values[field]) for field in fields}


class EventStore:
    """Partition-once, column-on-demand index over one event stream."""

    def __init__(self, events: Sequence[dict]):
        self._events = events
        self._partitions: Optional[dict[str, list[dict]]] = None
        self._columns: dict[tuple[str, str], np.ndarray] = {}

    # -- partitioning ------------------------------------------------------
    def _partition(self) -> dict[str, list[dict]]:
        if self._partitions is None:
            # defaultdict instead of setdefault: the latter allocates a
            # throwaway empty list per event on this O(N) hot pass.
            partitions: defaultdict[str, list[dict]] = defaultdict(list)
            for event in self._events:
                partitions[event.get("type")].append(event)
            self._partitions = dict(partitions)
        return self._partitions

    def event_types(self) -> list[str]:
        """All event types present, sorted for determinism."""
        return sorted(t for t in self._partition() if t is not None)

    def records(self, event_type: str) -> list[dict]:
        """The raw records of one type, in stream order (cached list)."""
        return self._partition().get(event_type, [])

    def count(self, event_type: str) -> int:
        return len(self.records(event_type))

    def __len__(self) -> int:
        return len(self._events)

    # -- columns -----------------------------------------------------------
    def column(self, event_type: str, field: str) -> np.ndarray:
        """One field of one partition as a NumPy array (memoized)."""
        key = (event_type, field)
        cached = self._columns.get(key)
        if cached is None:
            cached = as_column(_field_values(self.records(event_type),
                                             field))
            self._columns[key] = cached
        return cached

    def columns(self, event_type: str,
                fields: Iterable[str]) -> dict[str, np.ndarray]:
        """Several fields of one partition, each memoized.

        Uncached fields are extracted together in a single pass over
        the partition (see :func:`_value_lists`).
        """
        fields = list(fields)
        missing = [field for field in fields
                   if (event_type, field) not in self._columns]
        if missing:
            values = _value_lists(self.records(event_type), missing)
            for field in missing:
                self._columns[(event_type, field)] = \
                    as_column(values[field])
        return {field: self._columns[(event_type, field)]
                for field in fields}

    def table(self, event_type: str, fields: Sequence[str]) -> Table:
        """A :class:`Table` of one partition's named fields."""
        return Table(self.columns(event_type, fields))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<EventStore {len(self._events)} events, "
                f"{len(self._partition())} types>")
