"""Pluggable simulated backends for the pass-by-reference data plane.

Each backend answers two questions in simulated time: what does it cost
to *stage* a blob at put time, and what does it cost for a consumer to
*resolve* it later?  The three backends mirror the connector families
of Pauloski et al.:

``local``
    Worker-local memory.  Staging is free (the bytes already live in
    the owner's heap); resolution is one peer NIC hop charged through
    the shared :class:`~repro.platform.network.Network` model.  Not
    durable — the blob dies with its owner.
``pfs``
    Shared parallel-filesystem staging.  Put writes the blob once,
    striped across OSTs (:meth:`PFS.create_file` + a striped write);
    resolve is a striped read, so many consumers fan out over OST
    service slots instead of serialising on the owner's NIC.  Durable
    across worker crashes.
``mofka``
    A Mofka-backed blob channel: blobs ride a dedicated virtual topic
    (:data:`MOFKA_BLOB_TOPIC`, kept out of the provenance event
    stream), paying the service's RPC latency + ingest bandwidth per
    put/resolve and stalling while the blob's partition is blacked out
    by a ``mofka_partition_outage`` fault.  Durable.

All cost-charging methods are generators driven inside worker
processes (``yield from``); availability failures raise
:class:`BackendUnavailable`, which the Store's retry/fallback loop
turns into either a successful late resolve or a peer-fetch fallback.
"""

from __future__ import annotations

from ..mofka.topic import hash_string

__all__ = [
    "BackendUnavailable",
    "LocalMemoryBackend",
    "MOFKA_BLOB_TOPIC",
    "MofkaBlobBackend",
    "PFSStagingBackend",
    "make_backend",
]

#: The virtual topic name blob traffic is accounted against.  Shares
#: the outage namespace with real topics so ``mofka_partition_outage``
#: faults black out blob partitions too — but no events are ever
#: appended to it, so run loaders and provenance views never see it.
MOFKA_BLOB_TOPIC = "proxystore-blobs"


class BackendUnavailable(RuntimeError):
    """The backend cannot serve this blob right now (or ever again)."""


class LocalMemoryBackend:
    """Owner-resident blobs resolved over one peer network hop."""

    name = "local"
    #: Dies with the owning worker.
    durable = False

    def __init__(self, network):
        self.network = network
        self._owners: dict[str, object] = {}

    def put(self, key: str, nbytes: int, worker):
        self._owners[key] = worker
        return
        yield  # pragma: no cover - generator marker, body is free

    def fetch(self, proxy, worker):
        owner = self._owners.get(proxy.key)
        if owner is None or owner.failed:
            raise BackendUnavailable(
                f"owner of {proxy.key!r} is gone")
        if owner is worker:
            return
        yield from self.network.transfer(
            owner.node, worker.node, proxy.nbytes)
        if owner.failed:
            # The owner died while the bytes were in flight: what
            # arrived is garbage, exactly like a peer-fetch mid-transfer
            # crash.
            raise BackendUnavailable(
                f"owner of {proxy.key!r} died mid-resolve")

    def evict(self, proxy) -> None:
        self._owners.pop(proxy.key, None)

    def describe(self) -> dict:
        return {"name": self.name, "durable": self.durable,
                "blobs": len(self._owners)}


class PFSStagingBackend:
    """Blobs staged once to the shared PFS, resolved by striped reads."""

    name = "pfs"
    #: Survives worker crashes — the bytes live on the OSTs.
    durable = True

    #: Staging namespace on the simulated filesystem.
    STAGE_DIR = "/lus/proxystore"

    def __init__(self, pfs, stripe_count: int = 8):
        self.pfs = pfs
        self.stripe_count = stripe_count

    def _path(self, key: str) -> str:
        return f"{self.STAGE_DIR}/{key}.blob"

    def put(self, key: str, nbytes: int, worker):
        path = self._path(key)
        self.pfs.create_file(path, nbytes, stripe_count=self.stripe_count)
        yield from self.pfs.io(path, "write", 0, nbytes)

    def fetch(self, proxy, worker):
        path = self._path(proxy.key)
        if not self.pfs.exists(path):
            raise BackendUnavailable(f"no staged blob for {proxy.key!r}")
        yield from self.pfs.io(path, "read", 0, proxy.nbytes)

    def evict(self, proxy) -> None:
        self.pfs.unlink(self._path(proxy.key))

    def describe(self) -> dict:
        return {"name": self.name, "durable": self.durable,
                "stage_dir": self.STAGE_DIR,
                "stripe_count": self.stripe_count}


class MofkaBlobBackend:
    """Blobs pushed through a dedicated Mofka partition channel."""

    name = "mofka"
    #: Survives worker crashes — the bytes live with the service.
    durable = True

    def __init__(self, env, service, n_partitions: int = 4):
        self.env = env
        self.service = service
        self.n_partitions = n_partitions
        self._partitions: dict[str, int] = {}

    def _partition_for(self, key: str) -> int:
        partition = self._partitions.get(key)
        if partition is None:
            partition = hash_string(key) % self.n_partitions
            self._partitions[key] = partition
        return partition

    def _charge(self, key: str, nbytes: int):
        """One blob RPC: wait out any partition blackout, then pay the
        service's latency + ingest-bandwidth cost."""
        partition = self._partition_for(key)
        heal = self.service.outage_until(MOFKA_BLOB_TOPIC, partition)
        if heal > self.env.now:
            yield self.env.timeout(heal - self.env.now)
        yield self.env.timeout(
            self.service.RPC_LATENCY
            + nbytes / self.service.INGEST_BANDWIDTH)

    def put(self, key: str, nbytes: int, worker):
        yield from self._charge(key, nbytes)

    def fetch(self, proxy, worker):
        if proxy.key not in self._partitions:
            raise BackendUnavailable(f"no blob for {proxy.key!r}")
        yield from self._charge(proxy.key, proxy.nbytes)

    def evict(self, proxy) -> None:
        self._partitions.pop(proxy.key, None)

    def describe(self) -> dict:
        return {"name": self.name, "durable": self.durable,
                "topic": MOFKA_BLOB_TOPIC,
                "n_partitions": self.n_partitions}


def make_backend(kind: str, *, env=None, network=None, pfs=None,
                 mofka=None, **kwargs):
    """Build the named backend from whichever resources it needs."""
    if kind == "local":
        if network is None:
            raise ValueError("local backend needs the cluster network")
        return LocalMemoryBackend(network)
    if kind == "pfs":
        if pfs is None:
            raise ValueError("pfs backend needs the shared filesystem")
        return PFSStagingBackend(pfs, **kwargs)
    if kind == "mofka":
        if env is None or mofka is None:
            raise ValueError("mofka backend needs env and the service")
        return MofkaBlobBackend(env, mofka, **kwargs)
    raise ValueError(
        f"unknown proxy backend {kind!r}; choose local|pfs|mofka")
