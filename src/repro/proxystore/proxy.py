"""The pass-by-reference handle tasks receive instead of inline bytes.

Following Pauloski et al. (*Accelerating Python Applications with Dask
and ProxyStore*, PAPERS.md), a :class:`Proxy` is a lightweight,
picklable stand-in for a large task output: it names the key, records
how many bytes the real object occupies, which backend holds them, and
a *factory fingerprint* — a stable hash of the (key, nbytes, backend)
triple that identifies the resolve factory, so provenance events for
the same blob join across put/resolve/evict and across reruns.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Proxy", "factory_fingerprint"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def factory_fingerprint(key: str, nbytes: int, backend: str) -> str:
    """Stable 64-bit FNV-1a fingerprint of a proxy's resolve factory.

    Deterministic across processes and runs (no ``hash()``
    randomisation), so the same logical blob always carries the same
    fingerprint in the event stream.
    """
    digest = _FNV_OFFSET
    for byte in f"{backend}:{key}:{nbytes}".encode():
        digest ^= byte
        digest = (digest * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return f"{digest:016x}"


@dataclass(frozen=True)
class Proxy:
    """Immutable reference to ``nbytes`` of task output held off-path.

    Workers holding a ``Proxy`` pay nothing until they ``resolve()`` it
    through the :class:`~repro.proxystore.Store`, at which point the
    owning backend charges the correct simulated resource (peer NIC
    hop, striped OST reads, or a Mofka partition ingest/fetch).
    """

    key: str
    nbytes: int
    backend: str
    fingerprint: str

    @classmethod
    def create(cls, key: str, nbytes: int, backend: str) -> "Proxy":
        return cls(key=key, nbytes=nbytes, backend=backend,
                   fingerprint=factory_fingerprint(key, nbytes, backend))
