"""The Store front door: put/resolve/evict over a pluggable backend.

One :class:`Store` serves a whole cluster.  The scheduler consults
:meth:`has` when placing tasks (a proxied dependency costs no peer
transfer, so placement stops clustering onto replica holders); workers
call :meth:`put` when a large output materialises and drive
:meth:`resolve` from ``_gather`` instead of the peer-fetch path.

Every operation emits a first-class provenance event —
``proxy_put`` / ``proxy_resolve`` / ``proxy_evict`` — carrying the
paper's §III-E3 identifiers (key, worker, hostname, timestamp) plus
the backend, byte count, duration, and the proxy's factory
fingerprint, so :func:`~repro.core.data_plane.data_plane_view` can
join data-plane traffic against tasks and attribute the transfer time
the proxied path saved over the scheduler's estimate.
"""

from __future__ import annotations

from .backends import BackendUnavailable
from .proxy import Proxy

__all__ = ["ProxyResolveError", "Store"]


class ProxyResolveError(RuntimeError):
    """Raised when a blob stays unresolvable after the retry budget.

    Workers catch this and fall back to the classic peer-fetch path
    against the scheduler's replica map; if that is empty too, the
    ordinary data-lost recovery (recompute) takes over.
    """


class Store:
    """Cluster-wide pass-by-reference object store (simulated).

    Parameters
    ----------
    env:
        The simulation environment.
    backend:
        A backend from :mod:`repro.proxystore.backends`.
    threshold:
        Outputs of at least this many bytes are proxied.
    producer:
        Optional Mofka producer for the provenance events; without one
        the events still accumulate in :attr:`events` (unit tests,
        bare clusters).
    baseline_bandwidth:
        The scheduler's flat bandwidth estimate (``DaskConfig.
        bandwidth_estimate``); resolve events record
        ``nbytes / baseline_bandwidth`` as the transfer time the
        scheduler path would have budgeted, so analysis can attribute
        the saving per backend.
    max_retries / retry_backoff:
        Resolve retry budget and base backoff for transient backend
        unavailability (e.g. a blacked-out Mofka partition).
    """

    def __init__(self, env, backend, *, threshold: int,
                 producer=None, baseline_bandwidth: float = 100e6,
                 max_retries: int = 3, retry_backoff: float = 0.05):
        self.env = env
        self.backend = backend
        self.threshold = int(threshold)
        self.baseline_bandwidth = float(baseline_bandwidth)
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self._producer = producer
        self._proxies: dict[str, Proxy] = {}
        #: Every emitted event, in order (mirrors the producer stream).
        self.events: list[dict] = []
        # -- counters (cheap, always on) -----------------------------------
        self.n_puts = 0
        self.n_resolves = 0
        self.n_evictions = 0
        self.n_failed_resolves = 0
        self.bytes_put = 0
        self.bytes_resolved = 0
        self.resolve_seconds = 0.0

    # -- policy ------------------------------------------------------------
    def should_proxy(self, nbytes: int) -> bool:
        """Size-threshold policy: proxy outputs of at least ``threshold``."""
        return nbytes >= self.threshold

    def has(self, key: str) -> bool:
        return key in self._proxies

    def proxy_for(self, key: str):
        return self._proxies.get(key)

    def durable(self, key: str) -> bool:
        """True when ``key`` is proxied on a backend that survives the
        crash of every replica holder (PFS, Mofka)."""
        return key in self._proxies and self.backend.durable

    # -- wiring ------------------------------------------------------------
    def attach(self, dask) -> None:
        """Point one Dask-like cluster's scheduler and workers at us."""
        dask.scheduler.proxy_store = self
        for worker in dask.workers:
            worker.proxy_store = self

    # -- operations (simulation generators) --------------------------------
    def put(self, key: str, nbytes: int, worker):
        """Stage one output; returns the registered :class:`Proxy`.

        Driven inside the owning worker's process (``yield from``).
        Returns ``None`` without registering when the worker dies
        mid-staging — a half-staged blob must not advertise itself.
        """
        start = self.env.now
        yield from self.backend.put(key, nbytes, worker)
        if worker.failed:
            return None
        proxy = Proxy.create(key, nbytes, self.backend.name)
        self._proxies[key] = proxy
        self.n_puts += 1
        self.bytes_put += nbytes
        self._push("proxy_put", {
            "key": key,
            "worker": worker.address,
            "hostname": worker.node.name,
            "timestamp": self.env.now,
            "backend": self.backend.name,
            "nbytes": nbytes,
            "duration": self.env.now - start,
            "fingerprint": proxy.fingerprint,
            "status": "ok",
        })
        return proxy

    def resolve(self, key: str, worker):
        """Materialise one blob on ``worker``; returns its byte count.

        Retries transient :class:`BackendUnavailable` with linear
        backoff; after the budget is spent the failure is recorded
        (``status="lost"``) and :class:`ProxyResolveError` raised so
        the caller can fall back to a peer fetch.
        """
        proxy = self._proxies.get(key)
        if proxy is None:
            raise ProxyResolveError(f"{key!r} is not proxied")
        start = self.env.now
        retries = 0
        while True:
            try:
                yield from self.backend.fetch(proxy, worker)
            except BackendUnavailable as exc:
                retries += 1
                if retries > self.max_retries:
                    self.n_failed_resolves += 1
                    self._push("proxy_resolve", {
                        "key": key,
                        "worker": worker.address,
                        "hostname": worker.node.name,
                        "timestamp": self.env.now,
                        "backend": proxy.backend,
                        "nbytes": proxy.nbytes,
                        "duration": self.env.now - start,
                        "baseline_s": proxy.nbytes / self.baseline_bandwidth,
                        "fingerprint": proxy.fingerprint,
                        "retries": retries - 1,
                        "status": "lost",
                    })
                    raise ProxyResolveError(str(exc)) from None
                yield self.env.timeout(self.retry_backoff * retries)
                continue
            break
        duration = self.env.now - start
        self.n_resolves += 1
        self.bytes_resolved += proxy.nbytes
        self.resolve_seconds += duration
        self._push("proxy_resolve", {
            "key": key,
            "worker": worker.address,
            "hostname": worker.node.name,
            "timestamp": self.env.now,
            "backend": proxy.backend,
            "nbytes": proxy.nbytes,
            "duration": duration,
            "baseline_s": proxy.nbytes / self.baseline_bandwidth,
            "fingerprint": proxy.fingerprint,
            "retries": retries,
            "status": "ok",
        })
        return proxy.nbytes

    def evict(self, key: str) -> None:
        """Drop one blob (scheduler release path).  Idempotent."""
        proxy = self._proxies.pop(key, None)
        if proxy is None:
            return
        self.backend.evict(proxy)
        self.n_evictions += 1
        self._push("proxy_evict", {
            "key": key,
            "worker": "",
            "hostname": "",
            "timestamp": self.env.now,
            "backend": proxy.backend,
            "nbytes": proxy.nbytes,
            "duration": 0.0,
            "fingerprint": proxy.fingerprint,
            "status": "ok",
        })

    # -- provenance funnel --------------------------------------------------
    def _push(self, event_type: str, payload: dict) -> None:
        metadata = {"type": event_type}
        metadata.update(payload)
        self.events.append(metadata)
        if self._producer is not None:
            # Generic funnel: schema conformance is checked at the typed
            # _push() call sites, not here.
            self._producer.push(metadata)  # repro: allow[prov-untyped-emission, flow-unresolved-emission]

    # -- introspection -------------------------------------------------------
    def describe(self) -> dict:
        return {
            "backend": self.backend.describe(),
            "threshold": self.threshold,
            "n_blobs": len(self._proxies),
            "n_puts": self.n_puts,
            "n_resolves": self.n_resolves,
            "n_evictions": self.n_evictions,
            "n_failed_resolves": self.n_failed_resolves,
            "bytes_put": self.bytes_put,
            "bytes_resolved": self.bytes_resolved,
            "resolve_seconds": self.resolve_seconds,
        }
