"""ProxyStore-style pass-by-reference data plane (per Pauloski et al.).

Large task outputs are staged once into a shared backend and replaced
by lightweight :class:`Proxy` handles; consumers resolve them lazily,
charging the backend's simulated resource (peer NIC hop, striped OST
reads, or a Mofka partition channel) instead of the scheduler's
worker-to-worker transfer model — and, just as importantly, the
scheduler stops seeing the payload, so placement no longer clusters
onto replica holders.  Every put/resolve/evict is a first-class
provenance event; see :mod:`repro.core.data_plane` for the analysis
side and ``docs/data_plane.md`` for the full design.
"""

from .backends import (
    BackendUnavailable,
    LocalMemoryBackend,
    MOFKA_BLOB_TOPIC,
    MofkaBlobBackend,
    PFSStagingBackend,
    make_backend,
)
from .proxy import Proxy, factory_fingerprint
from .store import ProxyResolveError, Store

#: The provenance event types this layer emits.
PROXY_EVENT_TYPES = ("proxy_put", "proxy_resolve", "proxy_evict")

__all__ = [
    "BackendUnavailable",
    "LocalMemoryBackend",
    "MOFKA_BLOB_TOPIC",
    "MofkaBlobBackend",
    "PFSStagingBackend",
    "PROXY_EVENT_TYPES",
    "Proxy",
    "ProxyResolveError",
    "Store",
    "factory_fingerprint",
    "make_backend",
]
