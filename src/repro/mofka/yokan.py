"""Yokan: the Mochi key/value microservice.

Mofka "uses the following reusable Mochi microservices: Yokan to store
key/value data, Warabi to store raw (blob) data, Bedrock for deployment
and bootstrapping, and SSG for group membership and fault detection"
(§III-B).  This is the key/value component: an ordered map with prefix
scans, used by the broker to index partition offsets and topic
metadata, with optional JSON-lines persistence.
"""

from __future__ import annotations

import json
import os
from typing import Iterator, Optional

__all__ = ["YokanStore"]


class YokanStore:
    """An ordered string-keyed store with prefix iteration."""

    def __init__(self, name: str = "yokan"):
        self.name = name
        self._data: dict[str, str] = {}

    def put(self, key: str, value: str) -> None:
        if not isinstance(key, str) or not isinstance(value, str):
            raise TypeError("Yokan stores string keys and values")
        self._data[key] = value

    def get(self, key: str) -> str:
        try:
            return self._data[key]
        except KeyError:
            raise KeyError(f"yokan: no such key {key!r}") from None

    def exists(self, key: str) -> bool:
        return key in self._data

    def erase(self, key: str) -> None:
        self._data.pop(key, None)

    def __len__(self) -> int:
        return len(self._data)

    def list_keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._data if k.startswith(prefix))

    def iter_prefix(self, prefix: str = "") -> Iterator[tuple[str, str]]:
        for key in self.list_keys(prefix):
            yield key, self._data[key]

    # -- JSON convenience --------------------------------------------------
    def put_json(self, key: str, value: object) -> None:
        self.put(key, json.dumps(value, sort_keys=True))

    def get_json(self, key: str) -> object:
        return json.loads(self.get(key))

    # -- persistence ---------------------------------------------------------
    def dump(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for key in self.list_keys():
                fh.write(json.dumps({"k": key, "v": self._data[key]}) + "\n")

    @classmethod
    def load(cls, path: str, name: str = "yokan") -> "YokanStore":
        store = cls(name)
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                row = json.loads(line)
                store._data[row["k"]] = row["v"]
        return store
