"""SSG: Mochi group membership and fault detection.

Tracks which service processes belong to a group and detects failures
through missed heartbeats, as the SSG library does for Mochi services.
In the simulation, members ping the group periodically; a monitor
process marks members suspect/dead when pings stop arriving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sim import Environment

__all__ = ["SSGGroup", "Member"]


@dataclass
class Member:
    """One group member and its liveness bookkeeping."""

    address: str
    rank: int
    joined_at: float
    last_heartbeat: float
    status: str = "alive"  # alive | suspect | dead


class SSGGroup:
    """A named membership group with heartbeat-based fault detection."""

    def __init__(self, env: Environment, name: str,
                 heartbeat_period: float = 1.0,
                 suspect_after: float = 3.0,
                 dead_after: float = 10.0):
        self.env = env
        self.name = name
        self.heartbeat_period = heartbeat_period
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.members: dict[str, Member] = {}
        self._next_rank = 0
        self._observers: list[Callable[[Member, str], None]] = []
        self._monitoring = False

    # -- membership ------------------------------------------------------
    def join(self, address: str) -> Member:
        if address in self.members:
            raise ValueError(f"{address} already in group {self.name}")
        member = Member(
            address=address, rank=self._next_rank,
            joined_at=self.env.now, last_heartbeat=self.env.now,
        )
        self._next_rank += 1
        self.members[address] = member
        return member

    def leave(self, address: str) -> None:
        member = self.members.pop(address, None)
        if member is not None:
            member.status = "left"
            self._notify(member, "left")

    def alive(self) -> list[Member]:
        return [m for m in self.members.values() if m.status == "alive"]

    def on_change(self, callback: Callable[[Member, str], None]) -> None:
        self._observers.append(callback)

    def _notify(self, member: Member, change: str) -> None:
        for callback in self._observers:
            callback(member, change)

    # -- liveness ----------------------------------------------------------
    def heartbeat(self, address: str) -> None:
        member = self.members[address]
        member.last_heartbeat = self.env.now
        if member.status in ("suspect",):
            member.status = "alive"
            self._notify(member, "recovered")

    def start_monitor(self) -> None:
        if self._monitoring:
            return
        self._monitoring = True
        self.env.process(self._monitor(), name=f"ssg-{self.name}")

    def _monitor(self):
        while self._monitoring:
            yield self.env.timeout(self.heartbeat_period)
            if not self._monitoring:
                # stop_monitor() flipped the guard mid-sleep; marking
                # members suspect/dead now would fire callbacks after
                # the group was torn down.
                return
            now = self.env.now
            for member in self.members.values():
                if member.status in ("dead", "left"):
                    continue
                silence = now - member.last_heartbeat
                if silence >= self.dead_after and member.status != "dead":
                    member.status = "dead"
                    self._notify(member, "died")
                elif (silence >= self.suspect_after
                      and member.status == "alive"):
                    member.status = "suspect"
                    self._notify(member, "suspected")

    def stop_monitor(self) -> None:
        self._monitoring = False

    def describe(self) -> dict:
        return {
            "group": self.name,
            "members": [
                {"address": m.address, "rank": m.rank, "status": m.status}
                for m in self.members.values()
            ],
        }
