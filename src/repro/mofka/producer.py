"""Batching, non-blocking Mofka producer.

The paper stresses that instrumentation "must ... collect, aggregate,
and store this telemetry using lightweight mechanisms" (§III-B), and
that Mofka "optimizes transfers using a nonblocking API, background
network and processing threads, batching strategies".  This producer
reproduces that shape: :meth:`Producer.push` is a plain synchronous
call that never blocks the instrumented code path; a background
simulation process flushes accumulated batches to the broker when
either ``batch_size`` events have accumulated or ``linger`` seconds
have passed.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Environment, Store
from .server import MofkaService

__all__ = ["Producer"]


class Producer:
    """Client-side batching front end for one topic."""

    def __init__(self, env: Environment, service: MofkaService,
                 topic: str, batch_size: int = 64, linger: float = 0.05,
                 name: str = "producer"):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.env = env
        self.service = service
        self.topic = topic
        self.batch_size = batch_size
        self.linger = linger
        self.name = name

        self._buffer: list[tuple[dict, bytes]] = []
        self._counter = 0
        self._kick = Store(env)
        self._closed = False
        self._flusher = env.process(self._flush_loop(),
                                    name=f"{name}-flusher")

        # Client-side statistics for the overhead ablation.
        self.n_pushed = 0
        self.n_flushes = 0
        self.flush_sizes: list[int] = []
        self.flush_durations: list[float] = []
        #: Optional observer called as ``on_flush(size, duration)``
        #: after every completed flush RPC (telemetry hook).
        self.on_flush = None

    @property
    def buffer_depth(self) -> int:
        """Events accumulated and not yet flushed (telemetry probe)."""
        return len(self._buffer)

    # -- hot path -----------------------------------------------------------
    def push(self, metadata: dict, data: bytes = b"") -> None:
        """Enqueue one event; returns immediately (non-blocking)."""
        if self._closed:
            raise RuntimeError("producer closed")
        self._buffer.append((metadata, data))
        self.n_pushed += 1
        if len(self._buffer) >= self.batch_size:
            self._kick.put("full")

    # -- background flushing ----------------------------------------------
    def _flush_loop(self):
        while not self._closed or self._buffer:
            if not self._buffer:
                # Wait for either a kick or the linger timer.
                get = self._kick.get()
                timer = self.env.timeout(self.linger)
                yield get | timer
                if not get.triggered:
                    self._kick.cancel(get)
            elif len(self._buffer) < self.batch_size:
                get = self._kick.get()
                timer = self.env.timeout(self.linger)
                yield get | timer
                if not get.triggered:
                    self._kick.cancel(get)
            if self._buffer:
                yield self.env.process(self._flush_once())
                self._drain_stale_kicks()

    def _drain_stale_kicks(self) -> None:
        """Discard ``"full"`` kicks that the flush just satisfied.

        ``push`` kicks on *every* call past the threshold, so a flush
        that drains the buffer leaves the earlier kicks queued; without
        this drain they would wake the flusher immediately and trigger
        empty or short flush cycles, distorting ``n_flushes`` /
        ``flush_sizes`` (the statistics the A3 Mofka-overhead ablation
        reports).  The ``"close"`` kick is preserved so teardown still
        wakes the flusher.
        """
        items = self._kick.items
        while items and items[0] == "full" \
                and len(self._buffer) < self.batch_size:
            items.popleft()

    def _flush_once(self):
        # One RPC carries at most ``batch_size`` events; a backlog takes
        # several round trips (that is the knob the A3 ablation sweeps).
        batch = self._buffer[:self.batch_size]
        # Safe against concurrent push(): the slice-and-reassign pair
        # completes before the RPC yield below, so appends landing
        # during the transfer go to the already-drained list.
        self._buffer = self._buffer[self.batch_size:]  # repro: allow[conc-cross-context-mutation]
        start = self.env.now
        yield self.env.process(self.service.produce_batch(
            self.topic, batch, counter=self._counter,
        ))
        self._counter += len(batch)
        self.n_flushes += 1
        self.flush_sizes.append(len(batch))
        self.flush_durations.append(self.env.now - start)
        if self.on_flush is not None:
            self.on_flush(len(batch), self.env.now - start)

    # -- teardown -------------------------------------------------------------
    def flush(self):
        """Simulation process: drain everything buffered right now."""
        while self._buffer:
            yield self.env.process(self._flush_once())

    def close(self):
        """Simulation process: final drain, then stop the flusher."""
        yield self.env.process(self.flush())
        self._closed = True
        self._kick.put("close")  # wake the flusher so it can exit
