"""Mofka consumers: in-situ pulls and post-hoc bulk reads.

"Consumers subscribe to specific topics and pull events from servers to
process them ... the API for consuming events is identical whether
consumers process events individually in real time or in bulk at the
completion of a workflow" (§III-B).  Two entry points mirror that:

* :meth:`Consumer.pull` — a simulation process that fetches the next
  window of events while the workflow runs (in-situ analysis);
* :meth:`Consumer.fetch_all` — an immediate bulk read used by the
  PERFRECUP engine at analysis time.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Environment
from .event import Event
from .server import MofkaService

__all__ = ["Consumer"]


class Consumer:
    """A subscriber on one topic with per-partition offsets."""

    def __init__(self, env: Environment, service: MofkaService, topic: str,
                 name: str = "consumer"):
        self.env = env
        self.service = service
        self.topic_name = topic
        self.name = name
        topic_obj = service.topic(topic)
        self._offsets = {p.index: 0 for p in topic_obj.partitions}

    @property
    def lag(self) -> int:
        """Events published but not yet pulled by this consumer."""
        topic = self.service.topic(self.topic_name)
        return sum(
            len(part) - self._offsets[part.index]
            for part in topic.partitions
        )

    def pull(self, max_events: int = 1024):
        """Simulation process: fetch up to ``max_events`` pending events."""
        out: list[Event] = []
        per_part = max(1, max_events // max(1, len(self._offsets)))
        for index in sorted(self._offsets):
            events = yield self.env.process(self.service.fetch(
                self.topic_name, index, self._offsets[index], per_part,
            ))
            if events:
                self._offsets[index] = events[-1].offset + 1
                out.extend(events)
        out.sort(key=lambda e: (e.timestamp, e.partition, e.offset))
        return out

    def fetch_all(self) -> list[Event]:
        """Immediate bulk read of everything from the beginning.

        Used for postprocessing; does not advance this consumer's
        offsets (analysis replays the persistent stream).
        """
        return self.service.topic(self.topic_name).events()
