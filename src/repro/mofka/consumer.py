"""Mofka consumers: in-situ pulls and post-hoc bulk reads.

"Consumers subscribe to specific topics and pull events from servers to
process them ... the API for consuming events is identical whether
consumers process events individually in real time or in bulk at the
completion of a workflow" (§III-B).  Two entry points mirror that:

* :meth:`Consumer.pull` — a simulation process that fetches the next
  window of events while the workflow runs (in-situ analysis);
* :meth:`Consumer.fetch_all` — an immediate bulk read used by the
  PERFRECUP engine at analysis time.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Environment
from .event import Event, stream_order
from .server import MofkaService

__all__ = ["Consumer"]


class Consumer:
    """A subscriber on one topic with per-partition offsets."""

    def __init__(self, env: Environment, service: MofkaService, topic: str,
                 name: str = "consumer"):
        self.env = env
        self.service = service
        self.topic_name = topic
        self.name = name
        topic_obj = service.topic(topic)
        self._offsets = {p.index: 0 for p in topic_obj.partitions}

    @property
    def lag(self) -> int:
        """Events published but not yet pulled by this consumer."""
        topic = self.service.topic(self.topic_name)
        return sum(
            len(part) - self._offsets[part.index]
            for part in topic.partitions
        )

    def pull(self, max_events: int = 1024):
        """Simulation process: fetch up to ``max_events`` pending events.

        The per-partition quota is recomputed between rounds: a
        partition that fills its share keeps the right to the budget
        that *idle* partitions left unused, so a single hot partition
        can be drained at the full ``max_events`` rate instead of being
        capped at ``max_events / n_partitions`` while its lag grows.
        """
        out: list[Event] = []
        budget = max_events
        # Partitions that may still hold unread events for us.
        candidates = sorted(self._offsets)
        while budget > 0 and candidates:
            per_part = max(1, budget // len(candidates))
            drained: list[int] = []
            for index in candidates:
                if budget <= 0:
                    break
                quota = min(per_part, budget)
                events = yield self.env.process(self.service.fetch(
                    self.topic_name, index, self._offsets[index], quota,
                ))
                if events:
                    self._offsets[index] = events[-1].offset + 1
                    out.extend(events)
                    budget -= len(events)
                if len(events) < quota:
                    # Short read: nothing more pending right now.
                    drained.append(index)
            candidates = [i for i in candidates if i not in drained]
        out.sort(key=stream_order)
        return out

    def fetch_all(self) -> list[Event]:
        """Immediate bulk read of everything from the beginning.

        Used for postprocessing; does not advance this consumer's
        offsets (analysis replays the persistent stream).
        """
        return self.service.topic(self.topic_name).events()
