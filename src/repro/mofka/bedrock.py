"""Bedrock: Mochi service deployment and bootstrapping.

Bedrock turns a declarative JSON configuration into a running Mochi
service composition.  Here it instantiates the broker, its SSG group
monitor, and the requested topics from a config mapping, and returns a
handle bundle — mirroring how the paper's framework deploys Mofka
alongside the workflow "on any platform, and scaled as needed for a
given workflow instance" (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import Environment
from .server import MofkaService

__all__ = ["BedrockConfig", "bootstrap"]


@dataclass(frozen=True)
class BedrockConfig:
    """Declarative deployment description."""

    service_name: str = "mofka"
    address: str = "mofka://scheduler:9000"
    topics: tuple[tuple[str, int], ...] = (("dask-provenance", 4),)
    heartbeat_period: float = 1.0
    start_monitor: bool = True

    @classmethod
    def from_dict(cls, raw: dict) -> "BedrockConfig":
        return cls(
            service_name=raw.get("service_name", "mofka"),
            address=raw.get("address", "mofka://scheduler:9000"),
            topics=tuple(
                (t["name"], int(t.get("partitions", 4)))
                for t in raw.get("topics", [])
            ) or (("dask-provenance", 4),),
            heartbeat_period=float(raw.get("heartbeat_period", 1.0)),
            start_monitor=bool(raw.get("start_monitor", True)),
        )

    def describe(self) -> dict:
        return {
            "service_name": self.service_name,
            "address": self.address,
            "topics": [
                {"name": name, "partitions": n} for name, n in self.topics
            ],
            "heartbeat_period": self.heartbeat_period,
        }


def bootstrap(env: Environment, config: BedrockConfig) -> MofkaService:
    """Stand up a Mofka service per the Bedrock configuration."""
    service = MofkaService(env, name=config.service_name,
                           address=config.address)
    service.group.heartbeat_period = config.heartbeat_period
    for name, n_partitions in config.topics:
        service.create_topic(name, n_partitions)
    if config.start_monitor:
        service.group.start_monitor()
    return service
