"""Mofka-like event streaming service built from Mochi-like microservices.

The instrumentation transport of the reproduction: Dask-side plugins
act as producers, analysis tools as consumers (§III-B).  Composition
mirrors the paper's: Yokan (key/value), Warabi (blobs), Bedrock
(bootstrap), SSG (membership/fault detection), assembled into a broker
with topics, partitions, batching producers, and pull consumers.
"""

from .bedrock import BedrockConfig, bootstrap
from .consumer import Consumer
from .event import Event, stream_order, stream_sorted
from .producer import Producer
from .server import MofkaService
from .ssg import Member, SSGGroup
from .topic import Partition, Topic
from .warabi import WarabiStore
from .yokan import YokanStore

__all__ = [
    "BedrockConfig",
    "Consumer",
    "Event",
    "Member",
    "MofkaService",
    "Partition",
    "Producer",
    "SSGGroup",
    "Topic",
    "WarabiStore",
    "YokanStore",
    "bootstrap",
    "stream_order",
    "stream_sorted",
]
