"""The Mofka broker service.

Runs (conceptually) on the job's scheduler node, "executed in user
space without administrative privileges ... alongside the workflow"
(§III-B).  Holds topics, serves produce/consume RPCs with a small
simulated service latency, and persists every partition so analyses
can replay streams after the run — "event streams are persistent data
structures, and the API for consuming events is identical whether
consumers process events individually in real time or in bulk at the
completion of a workflow".
"""

from __future__ import annotations

import os
from typing import Optional

from ..sim import Environment
from .ssg import SSGGroup
from .topic import Topic

__all__ = ["MofkaService"]


class MofkaService:
    """An in-simulation event broker."""

    #: Fixed per-RPC service latency (seconds).
    RPC_LATENCY = 0.3e-3
    #: Broker ingest bandwidth, bytes/second.
    INGEST_BANDWIDTH = 5e9

    def __init__(self, env: Environment, name: str = "mofka",
                 address: str = "mofka://scheduler:9000"):
        self.env = env
        self.name = name
        self.address = address
        self.topics: dict[str, Topic] = {}
        self.group = SSGGroup(env, f"{name}-group")
        self.group.join(address)
        # Service-side statistics (used by the overhead ablation).
        self.n_produce_rpcs = 0
        self.n_events = 0
        self.bytes_ingested = 0
        # Fault-injection state (see repro.faults): (topic, partition)
        # -> heal time.  RPCs addressed to a partition in outage stall
        # until it heals (the client-side retry loop a real Mofka
        # deployment would run).  Empty dict = healthy path untouched.
        self._outages: dict[tuple[str, int], float] = {}

    # -- fault injection ----------------------------------------------------
    def partition_outage(self, topic_name: str, partition: int,
                         until: float) -> None:
        """Partition ``partition`` of ``topic_name`` is down until
        ``until``; produce/fetch RPCs touching it stall meanwhile."""
        key = (topic_name, partition)
        self._outages[key] = max(self._outages.get(key, 0.0), until)

    def _outage_heal(self, topic_name: str, partitions) -> float:
        return max((self._outages.get((topic_name, p), 0.0)
                    for p in partitions), default=0.0)

    def outage_until(self, topic_name: str, partition: int) -> float:
        """Heal time of one partition (0.0 when healthy).

        Public so side channels accounted against a virtual topic (the
        proxystore blob channel) can honour the same outage schedule as
        real RPC traffic.
        """
        return self._outages.get((topic_name, partition), 0.0)

    # -- admin -------------------------------------------------------------
    def create_topic(self, name: str, n_partitions: int = 4) -> Topic:
        if name in self.topics:
            raise ValueError(f"topic {name} exists")
        topic = Topic(name, n_partitions)
        self.topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        try:
            return self.topics[name]
        except KeyError:
            raise KeyError(f"no such topic {name!r}") from None

    # -- data plane -----------------------------------------------------------
    def produce_batch(self, topic_name: str, batch: list[tuple[dict, bytes]],
                      partition_key: Optional[str] = None,
                      counter: int = 0):
        """Simulation process: ingest one producer batch.

        Returns the list of stored events.  Service time models the RPC
        plus ingest bandwidth, so large batches amortise the round trip
        (the batching trade-off the A3 ablation sweeps).
        """
        topic = self.topic(topic_name)
        nbytes = sum(
            len(str(metadata)) + len(data) for metadata, data in batch
        )
        indexes = [
            topic.partition_for(partition_key, counter + i)
            for i in range(len(batch))
        ]
        if self._outages:
            heal = self._outage_heal(topic_name, set(indexes))
            if heal > self.env.now:
                # A target partition is down: the produce RPC blocks
                # (client retry loop) until the partition heals.
                yield self.env.timeout(heal - self.env.now)
        yield self.env.timeout(
            self.RPC_LATENCY + nbytes / self.INGEST_BANDWIDTH
        )
        events = []
        for index, (metadata, data) in zip(indexes, batch):
            events.append(topic.partitions[index].append(
                metadata, data, timestamp=self.env.now,
            ))
        self.n_produce_rpcs += 1
        self.n_events += len(batch)
        self.bytes_ingested += nbytes
        return events

    def fetch(self, topic_name: str, partition: int, start: int,
              max_events: int = 1024):
        """Simulation process: serve a consumer pull."""
        topic = self.topic(topic_name)
        if self._outages:
            heal = self._outages.get((topic_name, partition), 0.0)
            if heal > self.env.now:
                yield self.env.timeout(heal - self.env.now)
        events = list(topic.partitions[partition].read_range(
            start, start + max_events
        ))
        nbytes = sum(e.nbytes for e in events)
        yield self.env.timeout(
            self.RPC_LATENCY + nbytes / self.INGEST_BANDWIDTH
        )
        return events

    # -- introspection (telemetry probes) -----------------------------------
    def partition_depths(self) -> dict[str, list[int]]:
        """Events stored per partition, keyed by topic name."""
        return {
            name: [len(part) for part in self.topics[name].partitions]
            for name in sorted(self.topics)
        }

    # -- persistence -------------------------------------------------------------
    def dump(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        manifest = []
        for topic in self.topics.values():
            topic.dump(directory)
            manifest.append(f"{topic.name}:{len(topic.partitions)}")
        with open(os.path.join(directory, "MANIFEST"), "w") as fh:
            fh.write("\n".join(manifest) + "\n")

    @classmethod
    def load_topics(cls, directory: str) -> dict[str, Topic]:
        """Offline load for postprocessing analysis (no Environment)."""
        topics: dict[str, Topic] = {}
        with open(os.path.join(directory, "MANIFEST")) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                name, n = line.rsplit(":", 1)
                topics[name] = Topic.load(directory, name, int(n))
        return topics

    def describe(self) -> dict:
        return {
            "name": self.name,
            "address": self.address,
            "topics": {
                t.name: len(t.partitions) for t in self.topics.values()
            },
            "group": self.group.describe(),
            "stats": {
                "produce_rpcs": self.n_produce_rpcs,
                "events": self.n_events,
                "bytes_ingested": self.bytes_ingested,
            },
        }
