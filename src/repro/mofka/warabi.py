"""Warabi: the Mochi blob-storage microservice.

Stores raw byte payloads under opaque region IDs (the data portion of
Mofka events lands here; metadata goes to Yokan).  Supports partial
reads, which is how consumers fetch only the payloads they need.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["WarabiStore"]


class WarabiStore:
    """An append-only blob store addressed by integer region IDs."""

    def __init__(self, name: str = "warabi"):
        self.name = name
        self._blobs: list[bytes] = []

    def create(self, data: bytes) -> int:
        """Store a blob; returns its region ID."""
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("Warabi stores bytes")
        self._blobs.append(bytes(data))
        return len(self._blobs) - 1

    def read(self, region_id: int, offset: int = 0,
             length: Optional[int] = None) -> bytes:
        try:
            blob = self._blobs[region_id]
        except IndexError:
            raise KeyError(f"warabi: no region {region_id}") from None
        if offset < 0 or offset > len(blob):
            raise ValueError("offset out of range")
        end = len(blob) if length is None else min(len(blob), offset + length)
        return blob[offset:end]

    def size(self, region_id: int) -> int:
        return len(self._blobs[region_id])

    def __len__(self) -> int:
        return len(self._blobs)

    @property
    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs)

    # -- persistence ---------------------------------------------------------
    def dump(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "wb") as fh:
            for blob in self._blobs:
                fh.write(len(blob).to_bytes(8, "little"))
                fh.write(blob)

    @classmethod
    def load(cls, path: str, name: str = "warabi") -> "WarabiStore":
        store = cls(name)
        with open(path, "rb") as fh:
            while True:
                header = fh.read(8)
                if not header:
                    break
                size = int.from_bytes(header, "little")
                store._blobs.append(fh.read(size))
        return store
