"""Event structure of the Mofka-like streaming service.

"Each event has two parts.  The first is a data portion that contains
the raw data payload.  The second is metadata expressed in JSON format
to describe the data." (§III-B).  We reproduce that structure: the
metadata part is a JSON-serialisable mapping, the data part an opaque
byte string (often empty for provenance events, whose payload fits in
the metadata).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Optional

__all__ = ["Event", "stream_order", "stream_sorted"]


@dataclass(frozen=True)
class Event:
    """One event as stored in a topic partition."""

    topic: str
    partition: int
    offset: int
    timestamp: float
    metadata: dict
    data: bytes = b""

    def to_json(self) -> str:
        """Line-oriented serialisation (metadata only references data)."""
        return json.dumps({
            "topic": self.topic,
            "partition": self.partition,
            "offset": self.offset,
            "timestamp": self.timestamp,
            "metadata": self.metadata,
            "data_size": len(self.data),
        }, sort_keys=True)

    @classmethod
    def from_json(cls, line: str, data: bytes = b"") -> "Event":
        raw = json.loads(line)
        return cls(
            topic=raw["topic"], partition=raw["partition"],
            offset=raw["offset"], timestamp=raw["timestamp"],
            metadata=raw["metadata"], data=data,
        )

    @cached_property
    def nbytes(self) -> int:
        """Approximate wire size: JSON metadata plus raw payload.

        Computed on first access and cached (``cached_property``
        side-steps the frozen ``__setattr__`` via ``__dict__``):
        producers and partitions consult the size repeatedly for
        batching decisions, and re-serialising the metadata each time
        was measurable on the hot path.
        """
        return len(json.dumps(self.metadata)) + len(self.data)


def stream_order(event: Event) -> tuple[float, int, int]:
    """Canonical global ordering key of the event stream.

    Events merge across partitions by timestamp; ties break by
    ``(partition, offset)`` so the merged order is total and
    deterministic.  Every reader producing a cross-partition view
    (:meth:`Topic.events`, :meth:`Consumer.pull`) must sort with this
    one key, or downstream time-ordered analyses disagree about tie
    order.
    """
    return (event.timestamp, event.partition, event.offset)


def stream_sorted(events: Iterable[Event]) -> list[Event]:
    """Events merged into canonical stream order (a fresh list)."""
    return sorted(events, key=stream_order)
