"""Event structure of the Mofka-like streaming service.

"Each event has two parts.  The first is a data portion that contains
the raw data payload.  The second is metadata expressed in JSON format
to describe the data." (§III-B).  We reproduce that structure: the
metadata part is a JSON-serialisable mapping, the data part an opaque
byte string (often empty for provenance events, whose payload fits in
the metadata).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Event"]


@dataclass(frozen=True)
class Event:
    """One event as stored in a topic partition."""

    topic: str
    partition: int
    offset: int
    timestamp: float
    metadata: dict
    data: bytes = b""

    def to_json(self) -> str:
        """Line-oriented serialisation (metadata only references data)."""
        return json.dumps({
            "topic": self.topic,
            "partition": self.partition,
            "offset": self.offset,
            "timestamp": self.timestamp,
            "metadata": self.metadata,
            "data_size": len(self.data),
        }, sort_keys=True)

    @classmethod
    def from_json(cls, line: str, data: bytes = b"") -> "Event":
        raw = json.loads(line)
        return cls(
            topic=raw["topic"], partition=raw["partition"],
            offset=raw["offset"], timestamp=raw["timestamp"],
            metadata=raw["metadata"], data=data,
        )

    @property
    def nbytes(self) -> int:
        """Approximate wire size: JSON metadata plus raw payload."""
        return len(json.dumps(self.metadata)) + len(self.data)
