"""Topics and partitions of the Mofka-like broker.

"A producer pushes events that are organized into topics in the
servers" (§III-B).  A topic is a set of partitions; each partition is
an ordered, persistent event log.  Faithful to the Mochi composition,
a partition stores event metadata in a :class:`~repro.mofka.yokan.YokanStore`
(keyed by zero-padded offset, so prefix scans return events in order)
and payloads in a :class:`~repro.mofka.warabi.WarabiStore`.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional

from .event import Event, stream_order
from .warabi import WarabiStore
from .yokan import YokanStore

__all__ = ["Partition", "Topic"]


class Partition:
    """One ordered event log."""

    def __init__(self, topic: str, index: int):
        self.topic = topic
        self.index = index
        self.metadata_store = YokanStore(f"{topic}.{index}.meta")
        self.data_store = WarabiStore(f"{topic}.{index}.data")
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def append(self, metadata: dict, data: bytes, timestamp: float) -> Event:
        offset = self._n
        event = Event(
            topic=self.topic, partition=self.index, offset=offset,
            timestamp=timestamp, metadata=metadata, data=data,
        )
        region = self.data_store.create(data)
        self.metadata_store.put_json(
            f"evt/{offset:012d}", {
                "timestamp": timestamp,
                "metadata": metadata,
                "region": region,
            },
        )
        self._n += 1
        return event

    def read(self, offset: int) -> Event:
        raw = self.metadata_store.get_json(f"evt/{offset:012d}")
        data = self.data_store.read(raw["region"])
        return Event(
            topic=self.topic, partition=self.index, offset=offset,
            timestamp=raw["timestamp"], metadata=raw["metadata"], data=data,
        )

    def read_range(self, start: int, stop: Optional[int] = None
                   ) -> Iterator[Event]:
        stop = self._n if stop is None else min(stop, self._n)
        for offset in range(start, stop):
            yield self.read(offset)

    # -- persistence --------------------------------------------------------
    def dump(self, directory: str) -> None:
        base = os.path.join(directory, f"{self.topic}.{self.index}")
        self.metadata_store.dump(base + ".meta.jsonl")
        self.data_store.dump(base + ".warabi")

    @classmethod
    def load(cls, directory: str, topic: str, index: int) -> "Partition":
        base = os.path.join(directory, f"{topic}.{index}")
        part = cls(topic, index)
        part.metadata_store = YokanStore.load(base + ".meta.jsonl")
        part.data_store = WarabiStore.load(base + ".warabi")
        part._n = len(part.metadata_store.list_keys("evt/"))
        return part


class Topic:
    """A named stream split into partitions."""

    def __init__(self, name: str, n_partitions: int = 1):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.name = name
        self.partitions = [Partition(name, i) for i in range(n_partitions)]

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    def partition_for(self, partition_key: Optional[str], counter: int) -> int:
        """Hash routing when a key is given, round-robin otherwise."""
        if partition_key is None:
            return counter % len(self.partitions)
        return hash_string(partition_key) % len(self.partitions)

    def events(self) -> list[Event]:
        """All events, ordered by (timestamp, partition, offset)."""
        out: list[Event] = []
        for part in self.partitions:
            out.extend(part.read_range(0))
        out.sort(key=stream_order)
        return out

    def dump(self, directory: str) -> None:
        for part in self.partitions:
            part.dump(directory)

    @classmethod
    def load(cls, directory: str, name: str, n_partitions: int) -> "Topic":
        topic = cls(name, n_partitions)
        topic.partitions = [
            Partition.load(directory, name, i) for i in range(n_partitions)
        ]
        return topic


def hash_string(value: str) -> int:
    """Stable (non-salted) string hash for partition routing."""
    acc = 2166136261
    for ch in value.encode("utf-8"):
        acc = (acc ^ ch) * 16777619 % 2**32
    return acc
