"""Assembly and persistence of one fully instrumented run.

This module wires the three observation layers around a simulated Dask
cluster exactly as the paper deploys them:

* a Mofka service is bootstrapped next to the scheduler (Bedrock);
* the scheduler gets a :class:`MofkaSchedulerPlugin`, each worker a
  :class:`MofkaWorkerPlugin`, each with its own batching producer;
* each worker process's I/O layer is a
  :class:`~repro.darshan.DarshanRuntime` wrapping the PFS.

At the end of a run, :meth:`InstrumentedRun.persist` writes the run
directory PERFRECUP consumes::

    <run_dir>/
        provenance.json          # Fig.-1 layered metadata
        job.json                 # batch-layer record
        logs.jsonl               # client/scheduler/worker text logs
        mofka/                   # persisted event streams
        darshan/worker-*.darshan.json.gz

Dask data and Darshan data are collected separately and only fused at
analysis time (§III-E3) — nothing here cross-references the two except
the shared identifiers (hostname, pthread ID, timestamps) embedded in
the records themselves.
"""

from __future__ import annotations

import json
import os
from dataclasses import fields
from typing import Optional

from ..darshan import DEFAULT_BUFFER_LIMIT, DarshanRuntime, write_log
from ..dasklike import DaskCluster, DaskConfig
from ..jobs import Job
from ..mofka import BedrockConfig, Producer, bootstrap
from ..platform import Cluster
from ..sim import Environment, RandomStreams
from .metadata import capture_provenance, write_provenance
from .plugins import MofkaSchedulerPlugin, MofkaWorkerPlugin

__all__ = ["InstrumentedRun", "PROVENANCE_TOPIC"]

PROVENANCE_TOPIC = "dask-provenance"

#: Field-name tuples per log-entry type, resolved once.  ``asdict``
#: recurses (and deep-copies) through every row; log entries are flat
#: dataclasses of scalars, so a shallow ``getattr`` walk produces the
#: same dict — and the same JSONL bytes — without the copying.
_FLAT_FIELDS_CACHE: dict[type, tuple[str, ...]] = {}


def _log_entry_line(entry) -> str:
    """One JSONL line for a flat log-entry dataclass.

    Byte-identical to ``json.dumps(asdict(entry))`` for flat rows
    (field order follows declaration order either way), covered by a
    regression test against the ``asdict`` form.
    """
    cls = type(entry)
    names = _FLAT_FIELDS_CACHE.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(entry))
        _FLAT_FIELDS_CACHE[cls] = names
    return json.dumps({name: getattr(entry, name) for name in names})


class InstrumentedRun:
    """A Dask-like cluster with the paper's full instrumentation stack."""

    def __init__(self, env: Environment, cluster: Cluster, job: Job,
                 config: Optional[DaskConfig] = None,
                 streams: Optional[RandomStreams] = None,
                 dxt_buffer_limit: int = DEFAULT_BUFFER_LIMIT,
                 producer_batch_size: int = 64,
                 producer_linger: float = 0.05,
                 mofka_partitions: int = 4,
                 online_darshan: bool = False,
                 adaptive_dxt: bool = False,
                 telemetry=None,
                 run_index: int = 0, seed: int = 0):
        self.env = env
        self.cluster = cluster
        self.job = job
        self.run_index = run_index
        self.seed = seed
        #: Optional :class:`~repro.telemetry.Telemetry` bundle.  When
        #: absent nothing attaches — no engine monitor, no plugins —
        #: so the disabled path is exactly the pre-telemetry run.
        self.telemetry = telemetry

        self.mofka = bootstrap(env, BedrockConfig(
            topics=((PROVENANCE_TOPIC, mofka_partitions),),
            start_monitor=False,
        ))

        # Optional online extensions (paper future work, §VI).
        self.online_bridge = None
        if online_darshan:
            from .online import OnlineDarshanBridge
            self.online_bridge = OnlineDarshanBridge(env, self.mofka)

        # Darshan: one runtime per worker process.
        self.darshan_runtimes: list[DarshanRuntime] = []
        workers_per_node = job.spec.workers_per_node

        def io_layer_factory(index: int) -> DarshanRuntime:
            node = job.worker_nodes[index // workers_per_node]
            dxt_module = None
            if adaptive_dxt:
                from ..darshan.adaptive import AdaptiveDXTModule
                dxt_module = AdaptiveDXTModule(dxt_buffer_limit)
            runtime = DarshanRuntime(
                pfs=cluster.pfs, jobid=job.job_id, rank=index,
                hostname=node.name, exe="dask-worker",
                dxt_buffer_limit=dxt_buffer_limit,
                dxt_module=dxt_module,
                segment_callback=self.online_bridge.segment_callback
                if self.online_bridge is not None else None,
            )
            self.darshan_runtimes.append(runtime)
            return runtime

        self.dask = DaskCluster(
            env, cluster, job, config=config, streams=streams,
            io_layer_factory=io_layer_factory,
        )

        # Mofka plugins: one producer per instrumented process.
        self.producers: list[Producer] = []
        scheduler_producer = Producer(
            env, self.mofka, PROVENANCE_TOPIC,
            batch_size=producer_batch_size, linger=producer_linger,
            name="producer-scheduler",
        )
        self.producers.append(scheduler_producer)
        self.scheduler_plugin = MofkaSchedulerPlugin(scheduler_producer)
        self.scheduler_plugin.attach(self.dask.scheduler)

        self.worker_plugins: list[MofkaWorkerPlugin] = []
        for worker in self.dask.workers:
            producer = Producer(
                env, self.mofka, PROVENANCE_TOPIC,
                batch_size=producer_batch_size, linger=producer_linger,
                name=f"producer-{worker.address}",
            )
            self.producers.append(producer)
            plugin = MofkaWorkerPlugin(producer, worker.address)
            plugin.attach(worker)
            self.worker_plugins.append(plugin)

        # Pass-by-reference data plane (opt-in via DaskConfig): the
        # store shares the provenance topic through its own producer,
        # so proxy_put/resolve/evict events land in the same stream the
        # analysis views join on.  Disabled, nothing is constructed and
        # the event stream stays byte-identical.
        self.proxy_store = None
        if config is not None and config.proxy_enabled:
            from ..proxystore import Store, make_backend
            proxy_producer = Producer(
                env, self.mofka, PROVENANCE_TOPIC,
                batch_size=producer_batch_size, linger=producer_linger,
                name="producer-proxystore",
            )
            self.producers.append(proxy_producer)
            backend = make_backend(
                config.proxy_backend, env=env,
                network=cluster.network, pfs=cluster.pfs,
                mofka=self.mofka,
            )
            self.proxy_store = Store(
                env, backend,
                threshold=config.proxy_threshold,
                producer=proxy_producer,
                baseline_bandwidth=config.bandwidth_estimate,
                max_retries=config.proxy_max_retries,
                retry_backoff=config.proxy_retry_backoff,
            )
            self.proxy_store.attach(self.dask)

        if telemetry is not None:
            telemetry.instrument_run(self)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.dask.start()

    def client(self, name: str = "client"):
        return self.dask.client(name=name)

    def drain(self):
        """Simulation process: flush every producer's buffered events."""
        for producer in self.producers:
            yield self.env.process(producer.close())
        if self.online_bridge is not None:
            yield self.env.process(self.online_bridge.drain())

    # ------------------------------------------------------------------
    def persist(self, run_dir: str, client=None,
                workflow: Optional[dict] = None) -> str:
        """Write the complete run directory; returns its path."""
        os.makedirs(run_dir, exist_ok=True)

        # Layered provenance metadata (Fig. 1).
        write_provenance(
            capture_provenance(
                self.cluster, self.job, self.dask, client=client,
                mofka_service=self.mofka, workflow=workflow,
                run_index=self.run_index, seed=self.seed,
            ),
            os.path.join(run_dir, "provenance.json"),
        )

        # Batch-layer record.
        with open(os.path.join(run_dir, "job.json"), "w") as fh:
            json.dump(self.job.describe(), fh, indent=2)

        # Free-text logs from every component.
        logs = self.dask.all_logs()
        if client is not None:
            logs = sorted(logs + client.logs, key=lambda e: e.time)
        with open(os.path.join(run_dir, "logs.jsonl"), "w") as fh:
            for entry in logs:
                fh.write(_log_entry_line(entry) + "\n")

        # Mofka streams.
        self.mofka.dump(os.path.join(run_dir, "mofka"))

        # Darshan logs, one per worker process.
        darshan_dir = os.path.join(run_dir, "darshan")
        for runtime in self.darshan_runtimes:
            log = runtime.finalize()
            write_log(log, os.path.join(
                darshan_dir, f"worker-{log.rank:03d}.darshan.json.gz",
            ))

        # Telemetry artifacts (only when a bundle was attached).
        if self.telemetry is not None:
            self.telemetry.persist(run_dir)
        return run_dir
