"""Provenance metadata capture across all layers of Fig. 1.

The paper's data-provenance chart collects, per run:

* **hardware infrastructure** — platform characteristics (CPU, memory,
  PFS, network topology);
* **system software & job configuration** — OS, loaded modules,
  installed packages, job scripts and logs, allocated nodes;
* **application layer** — WMS configuration (the ``distributed.yaml``
  analogue), client code reference, scheduler/worker identities, and
  the profiler configuration.

:func:`capture_provenance` walks the live objects of one simulated run
and produces a single JSON-serialisable document with those three
layers, which the run recorder persists next to the Mofka streams and
Darshan logs.
"""

from __future__ import annotations

import json
import os
import platform as _pyplatform
from typing import Optional

__all__ = ["capture_provenance", "write_provenance", "read_provenance"]

#: Stand-in package inventory, captured the way ``pip list`` output would
#: be stored for a real run.
_PACKAGE_INVENTORY = {
    "dask": "2024.5.1+repro-sim",
    "distributed": "2024.5.1+repro-sim",
    "mofka": "0.1.0+repro-sim",
    "darshan": "3.4.4+taskprov",
    "pydarshan": "3.4.4",
    "numpy": "1.x",
}


def capture_provenance(cluster, job, dask_cluster, client=None,
                       mofka_service=None, workflow: Optional[dict] = None,
                       run_index: int = 0, seed: int = 0) -> dict:
    """Assemble the full three-layer provenance document for one run."""
    hardware = {
        "machine": cluster.describe(),
        "allocated_nodes": [n.describe() for n in job.nodes],
        "network": {
            "base_latency": cluster.spec.network.base_latency,
            "hop_latency": cluster.spec.network.hop_latency,
            "nic_bandwidth": cluster.spec.node.nic_bandwidth,
        },
    }
    system = {
        "os": {
            "system": "Linux",
            "release": "5.14.21-cray_shasta_c",
            "python": _pyplatform.python_version(),
        },
        "modules": list(job.spec.modules),
        "packages": dict(_PACKAGE_INVENTORY),
        "job": job.describe(),
    }
    application = {
        "wms": {
            "scheduler": dask_cluster.scheduler.describe(),
            "workers": [w.describe() for w in dask_cluster.workers],
            "config": dask_cluster.config.describe(),
        },
        "client": {
            "name": client.name if client is not None else None,
            "n_task_graphs": len(client.graph_indices)
            if client is not None else 0,
        },
        "profilers": {
            "darshan": {"enabled": True, "modules": ["POSIX", "DXT"]},
            "mofka": mofka_service.describe()
            if mofka_service is not None else None,
        },
        "workflow": workflow or {},
    }
    return {
        "run_index": run_index,
        "seed": seed,
        "layers": {
            "hardware_infrastructure": hardware,
            "system_software_and_job": system,
            "application": application,
        },
    }


def write_provenance(document: dict, path: str) -> str:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
    return path


def read_provenance(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
