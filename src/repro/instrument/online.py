"""Online (in-situ) analysis — the paper's future-work direction (§VI).

Two pieces:

* :class:`OnlineDarshanBridge` — "we will shift to capturing Darshan
  records and pushing them to Mofka at runtime to have a fully online
  system": a per-worker hook that forwards every DXT segment to a
  dedicated Mofka topic through a batching producer, so I/O telemetry
  is available *while the workflow runs* instead of only at shutdown.

* :class:`OnlineMonitor` — an in-situ consumer that periodically pulls
  the provenance (and optionally DXT) streams and maintains running
  aggregates: task throughput, per-prefix duration statistics, warning
  counts, and I/O volume.  Because Mofka streams are persistent, this
  consumer "can proceed at its own pace" (§III-B) without slowing the
  producers; snapshots can drive dashboards or the adaptive-capture
  policies of :mod:`repro.darshan.adaptive`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..mofka import Consumer, MofkaService, Producer
from ..sim import Environment

__all__ = ["OnlineDarshanBridge", "OnlineMonitor", "MonitorSnapshot"]

DXT_TOPIC = "darshan-dxt"


class OnlineDarshanBridge:
    """Streams DXT segments to Mofka as they are recorded."""

    def __init__(self, env: Environment, service: MofkaService,
                 topic: str = DXT_TOPIC, batch_size: int = 128,
                 linger: float = 0.1, n_partitions: int = 4):
        self.env = env
        self.service = service
        self.topic = topic
        if topic not in service.topics:
            service.create_topic(topic, n_partitions)
        self._producers: dict[int, Producer] = {}
        self.batch_size = batch_size
        self.linger = linger
        self.n_forwarded = 0

    def producer_for(self, rank: int) -> Producer:
        producer = self._producers.get(rank)
        if producer is None:
            producer = Producer(
                self.env, self.service, self.topic,
                batch_size=self.batch_size, linger=self.linger,
                name=f"dxt-producer-{rank}",
            )
            self._producers[rank] = producer
        return producer

    def segment_callback(self, runtime, segment) -> None:
        """The hook installed as ``DarshanRuntime.segment_callback``."""
        self.producer_for(runtime.rank).push({
            "type": "dxt_segment",
            "rank": runtime.rank,
            "hostname": runtime.hostname,
            "pthread_id": segment.pthread_id,
            "file": segment.path,
            "op": segment.op,
            "offset": segment.offset,
            "length": segment.length,
            "start": segment.start,
            "end": segment.end,
        })
        self.n_forwarded += 1

    def drain(self):
        """Simulation process: flush and close every producer."""
        for producer in self._producers.values():
            yield self.env.process(producer.close())


@dataclass
class MonitorSnapshot:
    """Running aggregates at one monitoring instant."""

    time: float
    n_events: int
    tasks_completed: int
    warnings: dict = field(default_factory=dict)
    prefix_durations: dict = field(default_factory=dict)  # prefix -> (n, mean)
    io_ops: int = 0
    io_bytes: int = 0
    lag: int = 0


class OnlineMonitor:
    """In-situ consumer maintaining running workflow statistics."""

    def __init__(self, env: Environment, service: MofkaService,
                 topics: tuple[str, ...], interval: float = 1.0,
                 on_snapshot: Optional[Callable[[MonitorSnapshot], None]]
                 = None, telemetry=None):
        self.env = env
        self.service = service
        self.interval = interval
        self.on_snapshot = on_snapshot
        self._consumers = [Consumer(env, service, t,
                                    name=f"monitor-{t}") for t in topics]
        self.snapshots: list[MonitorSnapshot] = []
        self._running = False

        # Optional live metrics feed: accepts a Telemetry bundle or a
        # bare MetricsRegistry; every poll publishes the running
        # aggregates as gauges next to the sampled platform series.
        registry = getattr(telemetry, "registry", telemetry)
        self._gauges = None
        if registry is not None:
            self._gauges = {
                "lag": registry.gauge(
                    "monitor.lag", "events behind the stream heads"),
                "events": registry.gauge(
                    "monitor.events_ingested", "events consumed so far"),
                "tasks": registry.gauge(
                    "monitor.tasks_completed", "task_run events seen"),
                "io_bytes": registry.gauge(
                    "monitor.io_bytes", "bytes traced by DXT events seen"),
            }

        # Running aggregates.
        self._n_events = 0
        self._tasks_completed = 0
        self._warnings: dict[str, int] = {}
        self._prefix_stats: dict[str, list] = {}  # prefix -> [n, total]
        self._io_ops = 0
        self._io_bytes = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.env.process(self._loop(), name="online-monitor")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.env.timeout(self.interval)
            if not self._running:
                # stop() during the sleep: a poll round now would pull
                # events on behalf of a stopped monitor.
                return
            yield self.env.process(self.poll())

    def poll(self):
        """Simulation process: one pull-and-aggregate round."""
        for consumer in self._consumers:
            events = yield self.env.process(consumer.pull(4096))
            for event in events:
                self._ingest(event.metadata)
        snapshot = self.snapshot()
        self.snapshots.append(snapshot)
        if self._gauges is not None:
            self._gauges["lag"].set(snapshot.lag)
            self._gauges["events"].set(snapshot.n_events)
            self._gauges["tasks"].set(snapshot.tasks_completed)
            self._gauges["io_bytes"].set(snapshot.io_bytes)
        if self.on_snapshot is not None:
            self.on_snapshot(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    def _ingest(self, metadata: dict) -> None:
        self._n_events += 1
        event_type = metadata.get("type")
        if event_type == "task_run":
            self._tasks_completed += 1
            prefix = metadata.get("prefix", "?")
            duration = metadata["stop"] - metadata["start"]
            stats = self._prefix_stats.setdefault(prefix, [0, 0.0])
            stats[0] += 1
            stats[1] += duration
        elif event_type == "warning":
            kind = metadata.get("kind", "?")
            self._warnings[kind] = self._warnings.get(kind, 0) + 1
        elif event_type == "dxt_segment":
            self._io_ops += 1
            self._io_bytes += metadata.get("length", 0)

    def snapshot(self) -> MonitorSnapshot:
        return MonitorSnapshot(
            time=self.env.now,
            n_events=self._n_events,
            tasks_completed=self._tasks_completed,
            warnings=dict(self._warnings),
            prefix_durations={
                prefix: (n, total / n if n else 0.0)
                for prefix, (n, total) in self._prefix_stats.items()
            },
            io_ops=self._io_ops,
            io_bytes=self._io_bytes,
            lag=sum(c.lag for c in self._consumers),
        )
