"""The paper's instrumentation layer: Dask–Mofka plugins, the adapted
Darshan deployment, and layered provenance-metadata capture (Fig. 1).

:class:`InstrumentedRun` is the one-stop assembly: given a platform
cluster and a job allocation it wires plugins, producers, and Darshan
runtimes around a Dask-like cluster, and persists the whole multi-
source record set for PERFRECUP.
"""

from .metadata import capture_provenance, read_provenance, write_provenance
from .online import (
    DXT_TOPIC,
    MonitorSnapshot,
    OnlineDarshanBridge,
    OnlineMonitor,
)
from .plugins import BasePlugin, MofkaSchedulerPlugin, MofkaWorkerPlugin
from .recorder import PROVENANCE_TOPIC, InstrumentedRun

__all__ = [
    "BasePlugin",
    "DXT_TOPIC",
    "InstrumentedRun",
    "MofkaSchedulerPlugin",
    "MofkaWorkerPlugin",
    "MonitorSnapshot",
    "OnlineDarshanBridge",
    "OnlineMonitor",
    "PROVENANCE_TOPIC",
    "capture_provenance",
    "read_provenance",
    "write_provenance",
]
