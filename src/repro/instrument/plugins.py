"""Dask–Mofka plugins (§III-E2): the paper's first contribution.

"We have developed two components serving as plugins for the Dask
scheduler and worker classes ... Their primary function is to intercept
specific calls within the classes and extract pertinent data from the
ongoing events."  The plugins below attach to the simulated scheduler
and workers, convert every intercepted observation into a Mofka event
(JSON metadata, empty payload), and push it through a non-blocking
batching :class:`~repro.mofka.Producer` — so instrumentation never
stalls the workflow, the property the paper's design argues for.

Event ``metadata["type"]`` values:

``transition``
    Task key/group/prefix, start and finish states, timestamp, stimulus,
    worker — from both scheduler and worker state machines.
``task_run``
    Completion record with worker address, hostname, *pthread ID*,
    start/end timestamps, output size, graph index, and the in-task
    compute/I-O split.
``communication``
    Incoming transfer: data key, endpoints (worker + host), size,
    start/stop, same-node and same-switch flags.
``warning``
    ``gc_collect`` / ``unresponsive_event_loop`` health events.
``steal``
    Work-stealing decisions (scheduler side).
"""

from __future__ import annotations

from dataclasses import asdict

from ..dasklike.records import (
    CommRecord,
    SpillRecord,
    StealEvent,
    TaskRun,
    WarningRecord,
)
from ..dasklike.states import TransitionRecord
from ..mofka import Producer

__all__ = ["BasePlugin", "MofkaSchedulerPlugin", "MofkaWorkerPlugin"]


class BasePlugin:
    """No-op plugin: the hook surface the WMS calls into."""

    def transition(self, record: TransitionRecord) -> None:  # noqa: D102
        pass

    def task_finished(self, record: TaskRun) -> None:  # noqa: D102
        pass

    def communication(self, record: CommRecord) -> None:  # noqa: D102
        pass

    def warning(self, record: WarningRecord) -> None:  # noqa: D102
        pass

    def spill_moved(self, record: SpillRecord) -> None:  # noqa: D102
        pass

    def steal(self, record: StealEvent) -> None:  # noqa: D102
        pass

    def task_added(self, *, key: str, group: str, prefix: str,
                   deps: list, graph_index: int,
                   timestamp: float) -> None:  # noqa: D102
        pass


class _MofkaPluginBase(BasePlugin):
    """Shared event-shaping logic for both plugins."""

    def __init__(self, producer: Producer, source: str):
        self.producer = producer
        self.source = source
        self.n_events = 0

    def _push(self, event_type: str, payload: dict) -> None:
        metadata = {"type": event_type, "plugin_source": self.source}
        metadata.update(payload)
        # Generic funnel: schema conformance is checked at the typed
        # _push() call sites, not here.
        self.producer.push(metadata)  # repro: allow[prov-untyped-emission, flow-unresolved-emission]
        self.n_events += 1


class MofkaSchedulerPlugin(_MofkaPluginBase):
    """Intercepts scheduler-side transitions and stealing decisions."""

    def __init__(self, producer: Producer):
        super().__init__(producer, source="scheduler")

    def attach(self, scheduler) -> None:
        scheduler.plugins.append(self)

    def transition(self, record: TransitionRecord) -> None:
        self._push("transition", asdict(record))

    def steal(self, record: StealEvent) -> None:
        self._push("steal", asdict(record))

    def task_added(self, *, key: str, group: str, prefix: str,
                   deps: list, graph_index: int, timestamp: float) -> None:
        self._push("task_added", {
            "key": key, "group": group, "prefix": prefix, "deps": deps,
            "graph_index": graph_index, "timestamp": timestamp,
        })


class MofkaWorkerPlugin(_MofkaPluginBase):
    """Intercepts worker-side transitions, completions, comms, warnings."""

    def __init__(self, producer: Producer, worker_address: str):
        super().__init__(producer, source=worker_address)

    def attach(self, worker) -> None:
        worker.plugins.append(self)

    def transition(self, record: TransitionRecord) -> None:
        self._push("transition", asdict(record))

    def task_finished(self, record: TaskRun) -> None:
        self._push("task_run", asdict(record))

    def communication(self, record: CommRecord) -> None:
        self._push("communication", asdict(record))

    def warning(self, record: WarningRecord) -> None:
        self._push("warning", asdict(record))

    def spill_moved(self, record: SpillRecord) -> None:
        self._push("spill", asdict(record))
