"""repro — reproduction of "Performance Characterization and Provenance
of Distributed Task-based Workflows on HPC Platforms" (SC 2024).

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (clock, processes, resources,
    seeded randomness).
``repro.platform``
    Polaris-like hardware: nodes, interconnect, Lustre-like PFS, noise.
``repro.jobs``
    PBS-like batch layer: specs, allocation, job scripts and logs.
``repro.dasklike``
    The Dask.distributed-style WMS substrate: client/scheduler/workers,
    dynamic scheduling, work stealing, collections, spilling, failure
    recovery.
``repro.mofka``
    Mofka-like event streaming built from Mochi-like microservices.
``repro.darshan``
    Darshan-like I/O characterization: POSIX counters, DXT with pthread
    IDs, HEATMAP, adaptive capture, logs and reports.
``repro.instrument``
    The paper's contribution glue: Dask-Mofka plugins, provenance
    capture, run persistence, online monitoring.
``repro.core``
    PERFRECUP: the multisource tabular analysis and visualization
    engine.
``repro.workflows``
    The three evaluation workflows and the multi-run experiment runner.

Entry points: the ``perfrecup`` CLI (``repro.cli``) and the experiment
registry (``repro.experiments``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
