"""repro — reproduction of "Performance Characterization and Provenance
of Distributed Task-based Workflows on HPC Platforms" (SC 2024).

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (clock, processes, resources,
    seeded randomness).
``repro.platform``
    Polaris-like hardware: nodes, interconnect, Lustre-like PFS, noise.
``repro.jobs``
    PBS-like batch layer: specs, allocation, job scripts and logs.
``repro.dasklike``
    The Dask.distributed-style WMS substrate: client/scheduler/workers,
    dynamic scheduling, work stealing, collections, spilling, failure
    recovery.
``repro.mofka``
    Mofka-like event streaming built from Mochi-like microservices.
``repro.darshan``
    Darshan-like I/O characterization: POSIX counters, DXT with pthread
    IDs, HEATMAP, adaptive capture, logs and reports.
``repro.instrument``
    The paper's contribution glue: Dask-Mofka plugins, provenance
    capture, run persistence, online monitoring.
``repro.core``
    PERFRECUP: the multisource tabular analysis and visualization
    engine.
``repro.lake``
    The provenance data lake: sharded multi-run catalog, LRU session
    cache, and the ``perfrecup serve`` query daemon.
``repro.workflows``
    The three evaluation workflows and the multi-run experiment runner.

Entry points: :func:`open_run` / :func:`open_catalog` below, the
``perfrecup`` CLI (``repro.cli``), and the experiment registry
(``repro.experiments``).

The accepted-source matrix of :func:`open_run` (one dispatcher,
:meth:`repro.core.RunData.load`, behind every entry)::

    open_run("./results/xgboost/run0000")   # persisted run directory
    open_run("lake://./mylake/<run_id>")    # catalog URI
    open_run(result)                        # RunResult from run_many
    open_run(result.data)                   # bare RunData
    open_run(session)                       # pass-through
    open_run(instrumented_run)              # live InstrumentedRun
"""

__version__ = "1.1.0"

__all__ = ["__version__", "open_run", "open_catalog"]


def open_run(source, client=None):
    """The :class:`~repro.core.session.AnalysisSession` of any source.

    The single front door to single-run analysis — see the source
    matrix in the module docstring.  Imports lazily so ``import
    repro`` stays cheap.
    """
    from .core import AnalysisSession
    return AnalysisSession.of(source, client=client)


def open_catalog(root, **knobs):
    """Open (creating on first use) the run catalog rooted at ``root``.

    ``knobs`` are the capacity settings of
    :meth:`repro.lake.Catalog.open` (``max_sessions``,
    ``max_cached_events``, ``wall_bucket_s``).
    """
    from .lake import Catalog
    return Catalog.open(root, **knobs)
