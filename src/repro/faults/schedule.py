"""Declarative fault schedules.

A :class:`FaultSchedule` is plain data — frozen specs in a tuple — so
it pickles across the ``run_many`` process pool and serialises into
provenance.  All randomness (picking an unspecified target, generating
a random schedule) flows through the run's named
:class:`~repro.sim.RandomStreams`, keeping fault runs exactly as
reproducible as healthy ones: same seed, same schedule, same victim,
same event stream.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultSchedule"]

#: Every fault kind the injector knows how to fire.
FAULT_KINDS = (
    "worker_crash",
    "worker_slowdown",
    "heartbeat_blackout",
    "network_degrade",
    "network_partition",
    "pfs_ost_slowdown",
    "mofka_partition_outage",
)

#: Kinds whose effect spans a window (``duration`` matters).
TRANSIENT_KINDS = frozenset(FAULT_KINDS) - {"worker_crash"}

#: CLI spec syntax: ``kind@time[:target][+duration][xMAG]``.
_SPEC_RE = re.compile(
    r"^(?P<kind>[a-z_]+)@(?P<time>[0-9]*\.?[0-9]+)"
    r"(?::(?P<target>[^+x][^+]*?))?"
    r"(?:\+(?P<duration>[0-9]*\.?[0-9]+))?"
    r"(?:x(?P<magnitude>[0-9]*\.?[0-9]+))?$"
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    time:
        Injection time in seconds *after the injector attaches* (i.e.
        after the cluster starts, excluding batch queue delay).
    target:
        What to hit — a worker address or name for worker kinds, a node
        name for ``network_partition``, an OST index for
        ``pfs_ost_slowdown``, a partition index for
        ``mofka_partition_outage``.  ``None`` lets the injector pick a
        victim from a dedicated seeded stream.
    duration:
        Length of the fault window for transient kinds, seconds.
    magnitude:
        Slowdown/degradation factor for the ``*_slowdown`` /
        ``network_degrade`` kinds.
    """

    kind: str
    time: float
    target: Optional[str] = None
    duration: float = 5.0
    magnitude: float = 4.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}")
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration < 0:
            raise ValueError("fault duration must be non-negative")
        if self.magnitude <= 0:
            raise ValueError("fault magnitude must be positive")

    @classmethod
    def parse(cls, spec: str) -> "FaultSpec":
        """Parse one ``kind@time[:target][+duration][xMAG]`` string."""
        match = _SPEC_RE.match(spec.strip())
        if match is None:
            raise ValueError(
                f"malformed fault spec {spec!r}; expected "
                f"kind@time[:target][+duration][xMAG] "
                f"(e.g. worker_crash@20 or pfs_ost_slowdown@10:3+30x8)")
        fields: dict = {
            "kind": match.group("kind"),
            "time": float(match.group("time")),
        }
        if match.group("target") is not None:
            fields["target"] = match.group("target")
        if match.group("duration") is not None:
            fields["duration"] = float(match.group("duration"))
        if match.group("magnitude") is not None:
            fields["magnitude"] = float(match.group("magnitude"))
        return cls(**fields)

    def describe(self) -> dict:
        """Flat picklable record (provenance / CLI / RunResult)."""
        return {
            "kind": self.kind,
            "time": self.time,
            "target": self.target,
            "duration": self.duration,
            "magnitude": self.magnitude,
        }


class FaultSchedule:
    """An ordered, immutable collection of :class:`FaultSpec`."""

    def __init__(self, faults: Iterable[FaultSpec] = ()):
        self.faults: tuple[FaultSpec, ...] = tuple(sorted(
            faults, key=lambda f: (f.time, f.kind, str(f.target))))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __eq__(self, other) -> bool:
        return (isinstance(other, FaultSchedule)
                and self.faults == other.faults)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{f.kind}@{f.time:g}" for f in self.faults)
        return f"FaultSchedule([{inner}])"

    @property
    def kinds(self) -> set:
        return {f.kind for f in self.faults}

    @classmethod
    def from_specs(cls, specs: Iterable[str]) -> "FaultSchedule":
        """Build a schedule from CLI-style spec strings."""
        return cls(FaultSpec.parse(spec) for spec in specs)

    def describe(self) -> list:
        return [f.describe() for f in self.faults]
