"""The fault driver: replays a schedule against one instrumented run.

Design constraints, in order of importance:

1. **Determinism** — a fixed seed and schedule must reproduce the run
   byte for byte.  Victim selection draws from per-fault named streams
   (``faults.target.<id>``), which perturbs no other stream; all fault
   windows are measured in simulation time.
2. **Zero-footprint when idle** — an injector attached with an empty
   schedule starts no process and creates no producer, so the healthy
   event stream is *exactly* the uninstrumented one (asserted by
   ``benchmarks/bench_faults_overhead.py``).
3. **Observability** — every injection emits (a) a ``fault`` provenance
   event with the paper's shared identifiers (worker, hostname,
   timestamp), (b) a ``warning`` event so faults land in the Fig.-7
   warning histogram next to the symptoms they cause, and (c) a
   scheduler log line in ``logs.jsonl``.
"""

from __future__ import annotations

from typing import Optional

from ..instrument import PROVENANCE_TOPIC
from ..mofka import Producer
from ..sim import RandomStreams
from .schedule import FaultSchedule, FaultSpec

__all__ = ["FaultInjector"]


class FaultInjector:
    """Fires a :class:`FaultSchedule` into an :class:`InstrumentedRun`."""

    def __init__(self, schedule: FaultSchedule,
                 streams: Optional[RandomStreams] = None):
        if not isinstance(schedule, FaultSchedule):
            schedule = FaultSchedule(schedule)
        self.schedule = schedule
        self.streams = streams or RandomStreams()
        #: Flat picklable record per fired fault (→ ``RunResult``).
        self.records: list[dict] = []
        self.run = None
        self.env = None
        self._producer: Optional[Producer] = None

    # ------------------------------------------------------------------
    def attach(self, run) -> None:
        """Hook the schedule into ``run``; a no-op for empty schedules."""
        self.run = run
        self.env = run.env
        if not self.schedule:
            return
        if self.schedule.kinds & {"worker_crash", "heartbeat_blackout"}:
            # Crash detection is heartbeat-driven: these kinds only
            # matter if somebody is watching the heartbeats.
            run.dask.scheduler.start_liveness_monitor()
        self.env.process(self._driver(), name="fault-injector")

    def _driver(self):
        # Fault times are relative to attach (i.e. to cluster start),
        # not absolute simulation time: the batch system's queue delay
        # precedes the run, and "crash a worker 20 s in" should mean 20
        # seconds into the *workflow*, whatever the queue did.
        t0 = self.env.now
        for fault_id, fault in enumerate(self.schedule):
            delay = t0 + fault.time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._fire(fault_id, fault)

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def _fire(self, fault_id: int, fault: FaultSpec) -> None:
        handler = getattr(self, f"_inject_{fault.kind}")
        target, worker, hostname = handler(fault_id, fault)
        self._record(fault_id, fault, target, worker, hostname)

    def _live_workers(self) -> list:
        return [w for w in self.run.dask.workers if not w.failed]

    def _pick_worker(self, fault_id: int, fault: FaultSpec):
        """Resolve the target worker (by address, name, or seeded pick)."""
        candidates = self._live_workers()
        if not candidates:
            return None
        if fault.target is not None:
            for worker in candidates:
                if fault.target in (worker.address, worker.name):
                    return worker
            return None  # named target already dead or unknown
        return self.streams.choice(
            f"faults.target.{fault_id}", candidates)

    def _pick_index(self, fault_id: int, fault: FaultSpec,
                    n: int) -> Optional[int]:
        if fault.target is not None:
            index = int(fault.target)
            return index if 0 <= index < n else None
        return int(self.streams.integers(f"faults.target.{fault_id}", 0, n))

    # -- worker kinds ---------------------------------------------------
    def _inject_worker_crash(self, fault_id: int, fault: FaultSpec):
        worker = self._pick_worker(fault_id, fault)
        if worker is None:
            return None, None, None
        worker._warn(
            "fault_worker_crash", 0.0,
            f"fault-injector: killing worker process at {worker.address}")
        worker.fail()  # silent: the liveness monitor must notice
        return worker.address, worker.address, worker.node.name

    def _inject_worker_slowdown(self, fault_id: int, fault: FaultSpec):
        worker = self._pick_worker(fault_id, fault)
        if worker is None:
            return None, None, None
        node = worker.node
        original = node.speed
        node.speed = original / fault.magnitude
        worker._warn(
            "fault_worker_slowdown", fault.duration,
            f"fault-injector: {node.name} degraded to "
            f"{1.0 / fault.magnitude:.2f}x speed for {fault.duration:g}s")
        self.env.process(self._heal_speed(node, original, fault.duration),
                         name=f"fault-heal-{fault_id}")
        return worker.address, worker.address, node.name

    def _heal_speed(self, node, original: float, duration: float):
        yield self.env.timeout(duration)
        # Exact restore (not a multiply) so repeated faults cannot
        # accumulate floating-point drift on the node's speed.
        node.speed = original

    def _inject_heartbeat_blackout(self, fault_id: int, fault: FaultSpec):
        worker = self._pick_worker(fault_id, fault)
        if worker is None:
            return None, None, None
        worker.blackout_until = max(
            worker.blackout_until, self.env.now + fault.duration)
        worker._warn(
            "fault_heartbeat_blackout", fault.duration,
            f"fault-injector: suppressing heartbeats from "
            f"{worker.address} for {fault.duration:g}s")
        return worker.address, worker.address, worker.node.name

    # -- platform kinds -------------------------------------------------
    def _inject_network_degrade(self, fault_id: int, fault: FaultSpec):
        network = self.run.cluster.network
        network.degrade(fault.magnitude, self.env.now + fault.duration)
        return "fabric", None, None

    def _inject_network_partition(self, fault_id: int, fault: FaultSpec):
        network = self.run.cluster.network
        if fault.target is not None:
            node_name = fault.target
        else:
            names = sorted({w.node.name for w in self._live_workers()})
            if not names:
                return None, None, None
            node_name = self.streams.choice(
                f"faults.target.{fault_id}", names)
        network.partition([node_name], self.env.now + fault.duration)
        return node_name, None, node_name

    def _inject_pfs_ost_slowdown(self, fault_id: int, fault: FaultSpec):
        pfs = self.run.cluster.pfs
        index = self._pick_index(fault_id, fault, pfs.spec.num_osts)
        if index is None:
            return None, None, None
        pfs.inject_ost_slowdown(
            index, fault.magnitude, self.env.now + fault.duration)
        return f"ost{index}", None, None

    def _inject_mofka_partition_outage(self, fault_id: int,
                                       fault: FaultSpec):
        service = self.run.mofka
        n = len(service.topic(PROVENANCE_TOPIC).partitions)
        index = self._pick_index(fault_id, fault, n)
        if index is None:
            return None, None, None
        until = self.env.now + fault.duration
        service.partition_outage(PROVENANCE_TOPIC, index, until)
        # The proxystore blob channel rides the same service: black out
        # the matching blob partition too, so a data plane on the
        # ``mofka`` backend feels the outage (no-op when proxying is
        # off — outages are keyed per (topic, partition)).
        from ..proxystore import MOFKA_BLOB_TOPIC
        service.partition_outage(MOFKA_BLOB_TOPIC, index, until)
        return f"{PROVENANCE_TOPIC}/{index}", None, None

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _ensure_producer(self) -> Producer:
        if self._producer is None:
            # Created lazily at the first fired fault, never for an
            # idle schedule; appended to run.producers so the run's
            # drain() flushes it with everything else.
            self._producer = Producer(
                self.env, self.run.mofka, PROVENANCE_TOPIC,
                name="producer-faults",
            )
            self.run.producers.append(self._producer)
        return self._producer

    def _record(self, fault_id: int, fault: FaultSpec,
                target, worker, hostname) -> None:
        now = self.env.now
        record = {
            "fault_id": fault_id,
            "kind": fault.kind,
            "target": target,
            "worker": worker,
            "hostname": hostname,
            "time": now,
            "duration": fault.duration,
            "magnitude": fault.magnitude,
            "fired": target is not None,
        }
        self.records.append(record)
        if target is None:
            self.run.dask.scheduler.log(
                "WARNING",
                f"fault-injector: {fault.kind} fault {fault_id} had no "
                f"eligible target ({fault.target!r}); skipped")
            return
        producer = self._ensure_producer()
        producer.push({
            "type": "fault",
            "fault_id": fault_id,
            "kind": fault.kind,
            "target": str(target),
            "worker": worker or "",
            "hostname": hostname or "",
            "timestamp": now,
            "duration": fault.duration,
            "magnitude": fault.magnitude,
        })
        if worker is None:
            # Platform-level faults have no worker to warn through;
            # emit the warning event directly so they still appear in
            # the warning histogram next to the symptoms they cause.
            producer.push({
                "type": "warning",
                "source": "fault-injector",
                "hostname": hostname or "",
                "kind": f"fault_{fault.kind}",
                "time": now,
                "duration": fault.duration,
                "message": f"fault-injector: {fault.kind} on {target} "
                           f"(x{fault.magnitude:g}, {fault.duration:g}s)",
            })
        self.run.dask.scheduler.log(
            "WARNING",
            f"fault-injector: injected {fault.kind} on {target} at "
            f"{now:.3f}s (duration {fault.duration:g}s, "
            f"magnitude {fault.magnitude:g})")
