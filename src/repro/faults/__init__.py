"""Deterministic fault injection and resilience (the robustness pillar).

The paper characterizes *healthy* runs, but its warning-distribution
and provenance-lineage analyses (§IV) exist to explain anomalies — and
provenance that only captures success cannot explain failure.  This
package drives seeded, reproducible faults through the simulation
stack (worker crashes, stragglers, heartbeat blackouts, network
degradation/partitions, PFS OST slowdowns, Mofka partition outages)
and emits every injection as a provenance/telemetry event carrying the
paper's shared identifiers, so injected faults are first-class rows in
PERFRECUP views.

Entry points:

* :class:`FaultSpec` / :class:`FaultSchedule` — declarative, picklable
  descriptions of *what* fails *when* (``FaultSchedule.from_specs``
  parses the ``kind@time[:target][+duration][xMAG]`` CLI syntax).
* :class:`FaultInjector` — attaches a schedule to one instrumented
  run; an injector with an empty schedule attaches nothing at all, so
  the healthy event stream stays byte-identical.
* ``run_workflow(faults=...)`` / ``perfrecup faults`` — the wiring.
"""

from .injector import FaultInjector
from .schedule import FAULT_KINDS, FaultSchedule, FaultSpec

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultSchedule", "FaultInjector"]
