"""Hardware substrate: nodes, interconnect, and parallel file system.

This package simulates the Polaris-like platform of the paper's
evaluation (§IV-A).  Everything the instrumentation layers observe —
transfer timestamps, I/O record timings, placement topology — is
produced here, so the analysis engine exercises the same correlation
logic it would against a physical machine.
"""

from .cluster import COMMODITY_CLUSTER, POLARIS_LIKE, Cluster, ClusterSpec
from .network import Network, NetworkSpec, TransferRecord
from .node import POLARIS_NODE, Node, NodeSpec
from .pfs import FileMeta, IORecord, ParallelFileSystem, PFSSpec

__all__ = [
    "COMMODITY_CLUSTER",
    "POLARIS_LIKE",
    "POLARIS_NODE",
    "Cluster",
    "ClusterSpec",
    "FileMeta",
    "IORecord",
    "Network",
    "NetworkSpec",
    "Node",
    "NodeSpec",
    "PFSSpec",
    "ParallelFileSystem",
    "TransferRecord",
]
