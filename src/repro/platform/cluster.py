"""Cluster assembly: nodes + interconnect + file system.

A :class:`Cluster` owns the full hardware substrate for one simulation.
Its job-facing operation is :meth:`Cluster.allocate`, which picks nodes
for a job the way a batch scheduler would: from whatever happens to be
free, with no topology guarantee.  The paper calls out exactly this as
a reproducibility hazard — "the allocated nodes may vary in performance
due to factors such as network topology" (§III-E1) — so allocation is
deliberately randomized per run (seeded), letting multi-run experiments
sample different placements like real job submissions do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import Environment, RandomStreams
from .network import Network, NetworkSpec
from .node import Node, NodeSpec
from .pfs import ParallelFileSystem, PFSSpec

__all__ = ["COMMODITY_CLUSTER", "Cluster", "ClusterSpec", "POLARIS_LIKE"]


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a machine."""

    name: str = "polaris-sim"
    num_nodes: int = 64
    nodes_per_switch: int = 8
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    pfs: PFSSpec = field(default_factory=PFSSpec)
    #: Sigma of per-node speed perturbation (manufacturing/thermal spread).
    node_speed_sigma: float = 0.03


#: Default machine shape, loosely modelled on ALCF Polaris.
POLARIS_LIKE = ClusterSpec()

#: A commodity departmental cluster: 10 GbE instead of Slingshot, an
#: NFS-class shared filesystem (few servers, slow, high-latency), more
#: node-to-node speed spread.  Used by the cross-platform bench to show
#: the characterization stack is machine-agnostic (§III: "our approach
#: can be used for other workflow management systems and tools").
COMMODITY_CLUSTER = ClusterSpec(
    name="commodity-sim",
    num_nodes=32,
    nodes_per_switch=16,
    node=NodeSpec(
        cores=16,
        memory_bytes=128 * 2**30,
        nic_bandwidth=1.25e9,      # 10 GbE
        nic_channels=2,
    ),
    network=NetworkSpec(
        base_latency=25e-6,
        hop_latency=10e-6,
        message_overhead=400e-6,
        intranode_bandwidth=40e9,
        jitter_sigma=0.2,
        congestion_probability=0.05,
    ),
    pfs=PFSSpec(
        num_osts=4,                # a few NFS servers, not a Lustre rack
        ost_bandwidth=0.4e9,
        request_latency=2.5e-3,
        ost_service_slots=2,
        default_stripe_count=1,
        jitter_sigma=0.25,
        max_interference=6.0,
    ),
    node_speed_sigma=0.08,
)


class Cluster:
    """A live machine: named nodes, a network, and a parallel FS."""

    def __init__(self, env: Environment, spec: ClusterSpec | None = None,
                 streams: RandomStreams | None = None):
        self.env = env
        self.spec = spec or POLARIS_LIKE
        self.streams = streams or RandomStreams()
        self.nodes: dict[str, Node] = {}
        for i in range(self.spec.num_nodes):
            name = f"nid{i:05d}"
            speed = self.spec.node.cpu_speed * self.streams.lognormal_factor(
                f"node.speed.{name}", self.spec.node_speed_sigma
            )
            self.nodes[name] = Node(
                env=env,
                name=name,
                spec=self.spec.node,
                switch=i // self.spec.nodes_per_switch,
                speed=speed,
            )
        self.network = Network(env, self.nodes, self.spec.network, self.streams)
        self.pfs = ParallelFileSystem(env, self.spec.pfs, self.streams)
        self._allocated: set[str] = set()

    # -- allocation ---------------------------------------------------------
    def allocate(self, count: int, job_name: str = "job") -> list[Node]:
        """Grab ``count`` free nodes, batch-scheduler style.

        The choice is a seeded random sample of the free pool, so two
        repetitions of the same experiment generally land on different
        nodes/switches — the placement variability the paper studies.
        """
        free = [n for n in self.nodes if n not in self._allocated]
        if count > len(free):
            raise RuntimeError(
                f"cannot allocate {count} nodes; only {len(free)} free"
            )
        rng = self.streams.stream(f"alloc.{job_name}")
        picked = sorted(rng.choice(len(free), size=count, replace=False).tolist())
        names = [free[i] for i in picked]
        self._allocated.update(names)
        return [self.nodes[n] for n in names]

    def release(self, nodes: list[Node]) -> None:
        for node in nodes:
            self._allocated.discard(node.name)

    def describe(self) -> dict:
        """Metadata record for the provenance hardware layer (Fig. 1)."""
        return {
            "machine": self.spec.name,
            "num_nodes": self.spec.num_nodes,
            "nodes_per_switch": self.spec.nodes_per_switch,
            "node": {
                "cores": self.spec.node.cores,
                "memory_bytes": self.spec.node.memory_bytes,
                "nic_bandwidth": self.spec.node.nic_bandwidth,
            },
            "pfs": self.pfs.describe(),
        }
