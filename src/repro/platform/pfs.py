"""Parallel-file-system model (Lustre-like).

The paper's evaluation platform exposes a Lustre file system (HPE
ClusterStor E1000, 100 PB, 650 GB/s aggregate) and repeatedly names I/O
as "a prominent source of performance variability at scale" (§III-C).
This module reproduces the behavioural ingredients behind that claim:

* files are striped over object storage targets (OSTs) in fixed-size
  stripes, so a single large read fans out into per-OST requests;
* each OST has a bounded number of service slots — concurrent requests
  queue FIFO, creating the bursty-synchronisation sensitivity the paper
  observes for the ImageProcessing workflow (three task graphs executed
  in sequence produce bursts of simultaneous I/O);
* a background *interference* process varies each OST's effective speed
  over time, modelling other jobs sharing the file system.

All operations return :class:`IORecord` values carrying the fields that
the (modified) Darshan DXT module records: op type, offset, length,
start/stop timestamps.  Thread attribution is added by the Darshan
runtime wrapper, not here, mirroring the layering of the real stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import Environment, RandomStreams, Resource

__all__ = ["PFSSpec", "FileMeta", "IORecord", "ParallelFileSystem"]


@dataclass(frozen=True)
class PFSSpec:
    """Tunable constants of the file-system model."""

    #: Number of object storage targets.
    num_osts: int = 16
    #: Per-OST streaming bandwidth, bytes/second.
    ost_bandwidth: float = 2.0e9
    #: Per-request fixed overhead (RPC + seek), seconds.
    request_latency: float = 0.6e-3
    #: Concurrent requests served by one OST before queueing.
    ost_service_slots: int = 4
    #: Default stripe size, bytes (Lustre default is 1 MiB; Polaris
    #: project filesystems commonly use larger stripes).
    stripe_size: int = 1 * 2**20
    #: Default stripe count for new files.
    default_stripe_count: int = 4
    #: Sigma of log-normal jitter per OST request.
    jitter_sigma: float = 0.15
    #: Interference random-walk parameters: the load factor of each OST
    #: wanders in [1, max_interference] with steps every ``interval`` s.
    max_interference: float = 4.0
    interference_interval: float = 5.0
    interference_step: float = 0.35


@dataclass(frozen=True)
class FileMeta:
    """Layout metadata of one file (what ``lfs getstripe`` would show)."""

    path: str
    size: int
    stripe_size: int
    stripe_count: int
    osts: tuple[int, ...]


@dataclass
class IORecord:
    """One POSIX-level I/O operation, as DXT would trace it."""

    path: str
    op: str  # "read" | "write"
    offset: int
    length: int
    start: float
    stop: float

    @property
    def duration(self) -> float:
        return self.stop - self.start


class ParallelFileSystem:
    """Striped, contended file-system model."""

    def __init__(self, env: Environment, spec: PFSSpec | None = None,
                 streams: RandomStreams | None = None, name: str = "lustre0"):
        self.env = env
        self.spec = spec or PFSSpec()
        self.streams = streams or RandomStreams()
        self.name = name
        self._osts = [
            Resource(env, capacity=self.spec.ost_service_slots)
            for _ in range(self.spec.num_osts)
        ]
        self._interference = [1.0] * self.spec.num_osts
        self._files: dict[str, FileMeta] = {}
        self._next_ost = 0
        self._interference_started = False
        # Fault-injection state (see repro.faults): per-OST slowdown
        # factor active while env.now < the matching deadline.  The
        # inactive default (deadline 0.0) keeps the healthy service-time
        # arithmetic bit-for-bit unchanged.
        self._fault_factor = [1.0] * self.spec.num_osts
        self._fault_until = [0.0] * self.spec.num_osts

    # -- fault injection ----------------------------------------------------
    def inject_ost_slowdown(self, ost_index: int, factor: float,
                            until: float) -> None:
        """Requests served by OST ``ost_index`` before ``until`` take
        ``factor×`` longer (a degraded/rebuilding storage target)."""
        self._fault_factor[ost_index] = factor
        self._fault_until[ost_index] = max(
            self._fault_until[ost_index], until)

    # -- interference ------------------------------------------------------
    def start_interference(self) -> None:
        """Launch the background load random walk (idempotent)."""
        if self._interference_started:
            return
        self._interference_started = True
        self.env.process(self._interference_walk(), name="pfs-interference")

    def _interference_walk(self):
        spec = self.spec
        while True:
            yield self.env.timeout(spec.interference_interval)
            for i in range(spec.num_osts):
                step = self.streams.uniform(
                    f"pfs.noise.{i}", -spec.interference_step, spec.interference_step
                )
                level = self._interference[i] + step
                self._interference[i] = min(spec.max_interference, max(1.0, level))

    # -- namespace ----------------------------------------------------------
    def create_file(self, path: str, size: int,
                    stripe_count: int | None = None) -> FileMeta:
        """Create (or replace) a file with round-robin OST assignment."""
        if size < 0:
            raise ValueError("size must be non-negative")
        count = min(
            stripe_count or self.spec.default_stripe_count, self.spec.num_osts
        )
        osts = tuple(
            (self._next_ost + k) % self.spec.num_osts for k in range(count)
        )
        self._next_ost = (self._next_ost + count) % self.spec.num_osts
        meta = FileMeta(
            path=path,
            size=size,
            stripe_size=self.spec.stripe_size,
            stripe_count=count,
            osts=osts,
        )
        self._files[path] = meta
        return meta

    def stat(self, path: str) -> FileMeta:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def unlink(self, path: str) -> None:
        """Remove a file from the namespace (idempotent, instantaneous)."""
        self._files.pop(path, None)

    def files(self) -> list[FileMeta]:
        return list(self._files.values())

    # -- data path -----------------------------------------------------------
    def _ost_for(self, meta: FileMeta, offset: int) -> int:
        stripe_index = offset // meta.stripe_size
        return meta.osts[stripe_index % meta.stripe_count]

    def _stripe_extents(self, meta: FileMeta, offset: int, length: int):
        """Split [offset, offset+length) into (ost, nbytes) pieces."""
        end = offset + length
        pos = offset
        while pos < end:
            stripe_end = (pos // meta.stripe_size + 1) * meta.stripe_size
            chunk = min(end, stripe_end) - pos
            yield self._ost_for(meta, pos), chunk
            pos += chunk

    def _serve(self, ost_index: int, nbytes: int, tag: str):
        """Process: one request against one OST."""
        ost = self._osts[ost_index]
        req = ost.request()
        yield req
        try:
            jitter = self.streams.lognormal_factor(
                f"pfs.jitter.{ost_index}", self.spec.jitter_sigma
            )
            slowdown = self._interference[ost_index]
            if self.env.now < self._fault_until[ost_index]:
                slowdown *= self._fault_factor[ost_index]
            service = (
                self.spec.request_latency
                + nbytes / self.spec.ost_bandwidth * slowdown
            ) * jitter
            yield self.env.timeout(service)
        finally:
            ost.release(req)

    def io(self, path: str, op: str, offset: int, length: int):
        """Process: one POSIX read/write; returns an :class:`IORecord`.

        A write beyond the current end of file extends it, as POSIX does.
        Reads beyond EOF are truncated to the file size (short read).
        """
        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be non-negative")
        meta = self.stat(path)
        if op == "read":
            length = max(0, min(length, meta.size - offset))
        start = self.env.now
        if length > 0:
            parts = [
                self.env.process(
                    self._serve(ost, nbytes, f"{op}:{path}"),
                    name=f"pfs-{op}",
                )
                for ost, nbytes in self._stripe_extents(meta, offset, length)
            ]
            yield self.env.all_of(parts)
        else:
            # Zero-byte ops still pay the RPC round trip.
            yield self.env.timeout(self.spec.request_latency)
        if op == "write" and offset + length > meta.size:
            self._files[path] = FileMeta(
                path=meta.path,
                size=offset + length,
                stripe_size=meta.stripe_size,
                stripe_count=meta.stripe_count,
                osts=meta.osts,
            )
        return IORecord(
            path=path, op=op, offset=offset, length=length,
            start=start, stop=self.env.now,
        )

    # -- introspection (telemetry probes) ----------------------------------
    def ost_queue_depths(self) -> list[int]:
        """Requests waiting (not yet served) per OST, by OST index."""
        return [len(ost.queue) for ost in self._osts]

    def ost_busy(self) -> list[int]:
        """Service slots currently in use per OST, by OST index."""
        return [ost.count for ost in self._osts]

    def interference_levels(self) -> list[float]:
        """Current external-load slowdown factor per OST."""
        return list(self._interference)

    def describe(self) -> dict:
        """Metadata record for the provenance hardware layer (Fig. 1)."""
        return {
            "name": self.name,
            "num_osts": self.spec.num_osts,
            "ost_bandwidth": self.spec.ost_bandwidth,
            "stripe_size": self.spec.stripe_size,
            "aggregate_bandwidth": self.spec.num_osts * self.spec.ost_bandwidth,
        }
