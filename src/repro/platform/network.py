"""Interconnect model.

The paper attributes part of the observed run-to-run variability to
network topology effects: "if the Dask scheduler and worker nodes are
connected to different switches, some workers may experience increased
latency" (§III-E1), and Fig. 5 colours communications by whether the
endpoints share a node.  This module provides exactly that structure —
a two-level switch topology with distinct intra-node, intra-switch and
inter-switch costs, per-NIC contention, and log-normal jitter.

A transfer is a simulation process: it claims a DMA channel on the
sender's and receiver's NICs (FIFO queueing under load), waits latency
plus ``size / effective_bandwidth`` (perturbed by jitter), and returns a
:class:`TransferRecord` that the worker instrumentation turns into the
communication events PERFRECUP analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Environment, RandomStreams
from .node import Node

__all__ = ["NetworkSpec", "TransferRecord", "Network"]


@dataclass(frozen=True)
class NetworkSpec:
    """Tunable constants of the interconnect model (Slingshot-11-like)."""

    #: One-way latency between NICs on the same switch (seconds).
    base_latency: float = 2.0e-6
    #: Extra latency per switch hop.
    hop_latency: float = 1.0e-6
    #: Software/protocol overhead per message (serialization setup etc.).
    message_overhead: float = 200e-6
    #: Bandwidth of an intra-node (shared-memory) transfer, bytes/s.
    intranode_bandwidth: float = 80e9
    #: Latency of an intra-node transfer.
    intranode_latency: float = 0.5e-6
    #: Sigma of the log-normal jitter on transfer durations.
    jitter_sigma: float = 0.12
    #: Probability that a message hits a transient congestion episode.
    congestion_probability: float = 0.02
    #: Multiplier applied during a congestion episode.
    congestion_factor: float = 8.0


@dataclass
class TransferRecord:
    """One completed point-to-point transfer."""

    src: str
    dst: str
    nbytes: int
    start: float
    stop: float
    same_node: bool
    same_switch: bool

    @property
    def duration(self) -> float:
        return self.stop - self.start


class Network:
    """Point-to-point transfer engine over a set of :class:`Node` objects."""

    def __init__(self, env: Environment, nodes: dict[str, Node],
                 spec: NetworkSpec | None = None,
                 streams: RandomStreams | None = None):
        self.env = env
        self.nodes = nodes
        self.spec = spec or NetworkSpec()
        self.streams = streams or RandomStreams()
        self.records: list[TransferRecord] = []
        # Fault-injection state (see repro.faults).  Inactive defaults:
        # the checks below compare env.now against 0.0 and consult an
        # empty dict, so a run without faults takes the exact same code
        # path (and draws the exact same random variates) as before.
        self._fault_factor = 1.0
        self._fault_until = 0.0
        self._partitioned: dict[str, float] = {}  # node name -> heal time

    # -- static cost model ------------------------------------------------
    def latency(self, src: Node, dst: Node) -> float:
        if src.name == dst.name:
            return self.spec.intranode_latency
        if src.switch == dst.switch:
            return self.spec.base_latency
        # Two-level fat tree: up to the spine and back down.
        return self.spec.base_latency + 2 * self.spec.hop_latency

    def bandwidth(self, src: Node, dst: Node) -> float:
        if src.name == dst.name:
            return self.spec.intranode_bandwidth
        return min(src.spec.nic_bandwidth, dst.spec.nic_bandwidth)

    # -- introspection (telemetry probes) ----------------------------------
    def nic_utilization(self) -> dict[str, dict]:
        """Per-node DMA channel occupancy and queue depths, by node name."""
        out: dict[str, dict] = {}
        for name in sorted(self.nodes):
            node = self.nodes[name]
            out[name] = {
                "send_busy": node.nic_send.count,
                "send_queued": len(node.nic_send.queue),
                "recv_busy": node.nic_recv.count,
                "recv_queued": len(node.nic_recv.queue),
            }
        return out

    # -- fault injection ----------------------------------------------------
    def degrade(self, factor: float, until: float) -> None:
        """All transfers started before ``until`` take ``factor×`` longer."""
        self._fault_factor = factor
        self._fault_until = until

    def partition(self, node_names, until: float) -> None:
        """Links touching ``node_names`` are down until ``until``.

        Transfers to or from a partitioned node stall until the
        partition heals, then proceed normally — the TCP-reconnect view
        of a transient link failure.
        """
        for name in node_names:
            self._partitioned[name] = max(
                self._partitioned.get(name, 0.0), until)

    def _heal_time(self, src: Node, dst: Node) -> float:
        if not self._partitioned:
            return 0.0
        return max(self._partitioned.get(src.name, 0.0),
                   self._partitioned.get(dst.name, 0.0))

    # -- transfers ---------------------------------------------------------
    def transfer(self, src: Node, dst: Node, nbytes: int):
        """Simulation process performing one transfer; returns the record."""
        start = self.env.now
        same_node = src.name == dst.name
        if not same_node:
            send_req = src.nic_send.request()
            recv_req = dst.nic_recv.request()
            yield send_req & recv_req
        try:
            base = (
                self.spec.message_overhead
                + self.latency(src, dst)
                + nbytes / self.bandwidth(src, dst)
            )
            jitter = self.streams.lognormal_factor(
                f"net.jitter.{src.name}.{dst.name}", self.spec.jitter_sigma
            )
            duration = base * jitter
            if (
                self.streams.uniform(f"net.congestion.{src.name}", 0.0, 1.0)
                < self.spec.congestion_probability
            ):
                duration *= self.spec.congestion_factor
            if not same_node:
                heal = self._heal_time(src, dst)
                if heal > self.env.now:
                    # Link partitioned: stall until it heals.
                    yield self.env.timeout(heal - self.env.now)
            if self.env.now < self._fault_until:
                duration *= self._fault_factor
            yield self.env.timeout(duration)
        finally:
            if not same_node:
                src.nic_send.release(send_req)
                dst.nic_recv.release(recv_req)
        record = TransferRecord(
            src=src.name,
            dst=dst.name,
            nbytes=nbytes,
            start=start,
            stop=self.env.now,
            same_node=same_node,
            same_switch=src.switch == dst.switch,
        )
        self.records.append(record)
        return record
