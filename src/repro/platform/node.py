"""Compute-node model.

A :class:`Node` models one HPC compute node: a named host with a CPU
speed factor, a memory capacity, and a network interface (NIC) whose
send and receive sides are contention points.  The reproduced paper ran
on ALCF Polaris nodes (one 32-core AMD EPYC 7543P, 512 GB DDR4, dual
Slingshot-11 NICs); :data:`POLARIS_NODE` captures that shape.

Nodes intentionally know nothing about workers or tasks — the WMS layer
(`repro.dasklike`) places workers *onto* nodes, which is exactly the
placement degree of freedom the paper identifies as a variability
source.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import Container, Environment, Resource

__all__ = ["NodeSpec", "Node", "POLARIS_NODE"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a node type.

    Attributes
    ----------
    cores:
        Physical cores available for worker threads.
    memory_bytes:
        RAM capacity.
    cpu_speed:
        Relative speed multiplier (1.0 = nominal).  Real machines show
        per-node speed spread from manufacturing variation and thermal
        state; the cluster builder perturbs this per node.
    nic_bandwidth:
        Injection bandwidth of the NIC, bytes/second.
    nic_channels:
        Concurrent DMA channels per NIC direction; more channels means
        more overlapping transfers before queueing starts.
    """

    cores: int = 32
    memory_bytes: int = 512 * 2**30
    cpu_speed: float = 1.0
    nic_bandwidth: float = 25e9
    nic_channels: int = 4


#: The Polaris node shape used throughout the paper's evaluation.
POLARIS_NODE = NodeSpec()


@dataclass
class Node:
    """A live node in a simulation: spec + contention resources."""

    env: Environment
    name: str
    spec: NodeSpec
    switch: int = 0
    #: Effective per-node speed after manufacturing/thermal perturbation.
    speed: float = 1.0
    nic_send: Resource = field(init=False)
    nic_recv: Resource = field(init=False)
    memory: Container = field(init=False)

    def __post_init__(self) -> None:
        self.nic_send = Resource(self.env, capacity=self.spec.nic_channels)
        self.nic_recv = Resource(self.env, capacity=self.spec.nic_channels)
        self.memory = Container(self.env, capacity=self.spec.memory_bytes)

    @property
    def hostname(self) -> str:
        return self.name

    def describe(self) -> dict:
        """Metadata record for the provenance hardware layer (Fig. 1)."""
        return {
            "hostname": self.name,
            "switch": self.switch,
            "cores": self.spec.cores,
            "memory_bytes": self.spec.memory_bytes,
            "cpu_speed": round(self.speed, 6),
            "nic_bandwidth": self.spec.nic_bandwidth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name} switch={self.switch}>"
