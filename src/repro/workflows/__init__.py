"""The paper's three evaluation workflows (§IV-B) and their runner.

Each workflow reproduces the graph shapes, file inventories, and I/O
granularities of its original, against synthetic stand-ins for the
datasets (see :mod:`repro.workflows.datasets` and DESIGN.md for the
substitution rationale).  ``run_many`` repeats an instrumented
execution with per-repetition reseeding, producing the multi-run data
every cross-run analysis consumes.
"""

from .base import Workflow, scaled
from .datasets import bcss_images, imagewang_files, nyc_taxi_parquet
from .image_processing import ImageProcessingWorkflow
from .resnet152 import ResNet152Workflow
from .runner import RunResult, run_many, run_many_iter, run_workflow
from .xgboost_trip import XGBoostWorkflow

__all__ = [
    "ImageProcessingWorkflow",
    "ResNet152Workflow",
    "RunResult",
    "Workflow",
    "XGBoostWorkflow",
    "bcss_images",
    "imagewang_files",
    "nyc_taxi_parquet",
    "run_many",
    "run_many_iter",
    "run_workflow",
    "scaled",
]
