"""The XGBoost trip-duration training workflow (§IV-B).

"This workflow trains a regression model to predict trip duration
using New York City High Volume For-Hire Vehicle trip records ... the
parquet data records from 2019 through 2024, with a total size of
20 GiB.  High-level methods such as xgboost.dask.train and
xgboost.dask.predict are used, and the underlying task graph is created
automatically."

Table I: 74 task graphs, 10,348 distinct tasks, 61 distinct files.
Fig. 6 shows the longest tasks in the ``read_parquet-fused-assign``
category with outputs well above Dask's recommended 128 MB; Fig. 7
shows ~300 unresponsive-event-loop warnings concentrated in the first
~500 s, while those fused reads hold their oversized partitions in
memory.

Graph inventory (74 at paper scale):

1. ``read_parquet`` + ``assign`` — submitted fused, producing the
   ``read_parquet-fused-assign`` category with >128 MB outputs.
2. ``getitem`` — feature/label projection (unfused, its own category).
3. ``drop_by_shallow_copy`` + ``random_split_take`` — train/test split.
4. 70 boosting rounds — per-partition gradient/histogram tasks feeding
   a tree-build reduction; each round is one task graph whose model
   output the next round consumes (cross-graph dependencies).
5. ``predict`` on the held-out partitions.

Early rounds run while the oversized intermediates are still pinned,
so worker memory pressure — and with it the GC/unresponsive-loop
warning rate — peaks in the opening minutes, reproducing Fig. 7's
temporal skew.
"""

from __future__ import annotations

from ..dasklike import DaskConfig, IOOp, TaskGraph, TaskSpec
from ..dasklike.dataframe import read_parquet
from ..dasklike.utils import tokenize
from .base import Workflow, scaled
from .datasets import nyc_taxi_parquet

__all__ = ["XGBoostWorkflow"]


class XGBoostWorkflow(Workflow):
    """NYC-FHV trip-duration regression with Dask-XGBoost graph shapes."""

    name = "XGBOOST"
    paper_runs = 50

    #: Paper-scale knobs.
    N_FILES = 61
    TOTAL_BYTES = 20 * 2**30
    PARTITIONS_PER_FILE = 2
    #: Column-chunk reads per row-group partition (61 x 2 x 7 = 854
    #: read ops at paper scale, inside Table I's 867-1670 band once
    #: checkpoint and prediction writes are added).
    READ_OPS_PER_PARTITION = 7
    ROUNDS = 70
    #: Parquet decode cost (s per GiB on disk): dominates the fused reads.
    DECODE_TIME_PER_GIB = 120.0
    #: Per-round per-partition gradient/histogram cost (s).
    GRAD_TIME = 4.0
    MODEL_BYTES = 2 * 2**20
    #: Model checkpoint every k rounds (adds the write-side I/O ops).
    CHECKPOINT_EVERY = 1

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.n_files = scaled(self.N_FILES, scale, minimum=4)
        self.total_bytes = max(64 * 2**20,
                               int(self.TOTAL_BYTES * scale))
        self.rounds = scaled(self.ROUNDS, scale, minimum=3)
        self.inventory: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    def recommended_config(self) -> DaskConfig:
        """WMS config reproducing the paper's memory-pressure regime.

        The oversized fused partitions must actually pressure worker
        memory for the Fig.-7 warning skew to appear, so the worker
        memory limit is set to the few-GiB working-set band the
        partitions occupy early in the run.  The GC pause rate is
        scaled inversely with the workload scale so that the *warning
        density over the run* matches the full-scale regime even in
        scaled-down test/bench configurations (a shorter run would
        otherwise see proportionally fewer pause events and the Fig.-7
        distribution would drown in noise).
        """
        limit = max(128 * 2**20, int(self.total_bytes * 1.6 // 8))
        rate_scale = 1.0 / max(self.scale, 0.05)
        base = DaskConfig()
        return DaskConfig(
            memory_limit=limit,
            gc_pressure_rate=base.gc_pressure_rate * rate_scale,
        )

    def prepare(self, cluster, streams) -> None:
        self.inventory = nyc_taxi_parquet(
            cluster, streams, n_files=self.n_files,
            total_bytes=self.total_bytes,
        )
        self.checkpoint_path = "/lus/xgboost/model-checkpoints.ubj"
        self.predictions_path = "/lus/xgboost/predictions.parquet"
        cluster.pfs.create_file(self.checkpoint_path, 0, stripe_count=1)
        cluster.pfs.create_file(self.predictions_path, 0, stripe_count=4)

    # ------------------------------------------------------------------
    def driver(self, env, client, cluster):
        paths = [p for p, _ in self.inventory]
        sizes = [s for _, s in self.inventory]

        # Graph 1: read_parquet + assign, submitted fused.
        frame = read_parquet(
            paths, sizes,
            partitions_per_file=self.PARTITIONS_PER_FILE,
            read_ops_per_partition=self.READ_OPS_PER_PARTITION,
            decode_time_per_gib=self.DECODE_TIME_PER_GIB,
            in_memory_ratio=1.6,
        ).assign(compute_time_per_partition=0.4)
        _, loaded_keys = yield env.process(
            client.persist(frame.graph("load"), optimize=True))
        frame.mark_computed()
        # After fusion the leaf keys changed names; track the fused keys.
        fused_keys = list(loaded_keys)

        # Graph 2: getitem (feature/label projection).
        token = tokenize(self.name, "getitem", self.scale)
        projected = [
            TaskSpec(key=(f"getitem-{token}", i), deps=(key,),
                     compute_time=0.05,
                     output_nbytes=max(1, int(nbytes * 0.6)))
            for i, (key, nbytes) in enumerate(loaded_keys.items())
        ]
        graph2 = TaskGraph(projected, name="getitem")
        _, proj_keys = yield env.process(
            client.persist(graph2, optimize=False))

        # Graph 3: drop_by_shallow_copy + random_split_take + DMatrix.
        # The final stage converts each split partition into the compact
        # DMatrix representation xgboost trains on; once the DMatrix
        # exists the dataframe partitions are dropped, so the oversized
        # frames live only through this opening phase — which is what
        # concentrates the Fig.-7 warnings at the start of the run.
        token3 = tokenize(self.name, "split", self.scale)
        tasks3, train_keys, test_keys = [], {}, {}
        for i, (key, nbytes) in enumerate(proj_keys.items()):
            drop = TaskSpec(key=(f"drop_by_shallow_copy-{token3}", i),
                            deps=(key,), compute_time=0.02,
                            output_nbytes=max(1, int(nbytes * 0.98)))
            train = TaskSpec(key=(f"random_split_take-{token3}", 0, i),
                             deps=(drop.key,), compute_time=0.03,
                             output_nbytes=max(1, int(nbytes * 0.8)))
            test = TaskSpec(key=(f"random_split_take-{token3}", 1, i),
                            deps=(drop.key,), compute_time=0.03,
                            output_nbytes=max(1, int(nbytes * 0.2)))
            dmx_train = TaskSpec(key=(f"dmatrix-{token3}", 0, i),
                                 deps=(train.key,), compute_time=0.05,
                                 output_nbytes=max(1, int(
                                     train.output_nbytes * 0.35)))
            dmx_test = TaskSpec(key=(f"dmatrix-{token3}", 1, i),
                                deps=(test.key,), compute_time=0.05,
                                output_nbytes=max(1, int(
                                    test.output_nbytes * 0.35)))
            tasks3 += [drop, train, test, dmx_train, dmx_test]
            train_keys[dmx_train.name] = dmx_train.output_nbytes
            test_keys[dmx_test.name] = dmx_test.output_nbytes
        graph3 = TaskGraph(tasks3, name="split")
        yield env.process(client.persist(
            graph3, optimize=False,
            wanted=list(train_keys) + list(test_keys)))
        # The raw and projected frames are no longer needed: release
        # them so memory pressure relaxes after the opening phase.
        client.release(list(fused_keys))
        client.release(list(proj_keys))

        # Graphs 4..: boosting rounds (xgboost.dask.train).
        model_key = None
        for r in range(self.rounds):
            token_r = tokenize(self.name, "round", r)
            grads = []
            for i, (tkey, nbytes) in enumerate(train_keys.items()):
                deps = (tkey,) if model_key is None else (tkey, model_key)
                # The histogram exchange happens inside the collective
                # (rabit allreduce), not over Dask's data channel, so a
                # grad task's Dask-visible result is an empty marker.
                grads.append(TaskSpec(
                    key=(f"grad-hist-{token_r}", i), deps=deps,
                    compute_time=self.GRAD_TIME,
                    output_nbytes=0,
                ))
            # Rabit-style reduction: histograms are first combined into
            # per-worker partials over *contiguous* partition ranges (the
            # ranges root co-assignment laid out on each worker, so the
            # partial reducers run where their inputs already live), and
            # only the small partials cross the network to the single
            # model-update task.  This mirrors xgboost.dask, where the
            # heavy allreduce happens inside the collective rather than
            # as a web of Dask transfers.
            round_tasks = list(grads)
            group_size = max(1, -(-len(grads) // 8))
            level = []
            for idx, start in enumerate(range(0, len(grads), group_size)):
                group = [g.key for g in grads[start:start + group_size]]
                spec = TaskSpec(
                    key=(f"tree-reduce-{token_r}", idx),
                    deps=tuple(group),
                    compute_time=0.02 * len(group),
                    output_nbytes=0,
                )
                round_tasks.append(spec)
                level.append(spec.key)
            if len(level) > 1:
                merge = TaskSpec(
                    key=(f"tree-reduce-{token_r}", len(level)),
                    deps=tuple(level),
                    compute_time=0.02 * len(level),
                    output_nbytes=0,
                )
                round_tasks.append(merge)
                level = [merge.key]
            checkpoint_writes = ()
            if r % self.CHECKPOINT_EVERY == 0:
                checkpoint_writes = (IOOp(
                    self.checkpoint_path, "write",
                    r * self.MODEL_BYTES, self.MODEL_BYTES,
                ),)
            update = TaskSpec(
                key=f"model-update-{token_r}",
                deps=(level[0],) + (() if model_key is None
                                    else (model_key,)),
                compute_time=0.05, output_nbytes=self.MODEL_BYTES,
                writes=checkpoint_writes,
            )
            round_tasks.append(update)
            graph_r = TaskGraph(round_tasks, name=f"round-{r}")
            yield env.process(client.persist(
                graph_r, optimize=False, wanted=[update.name]))
            if model_key is not None:
                client.release([model_key])
            model_key = update.name

        # Final graph: predict on the held-out partitions.
        token_p = tokenize(self.name, "predict", self.scale)
        predict_tasks = []
        pred_offset = 0
        for i, (tkey, nbytes) in enumerate(test_keys.items()):
            out = max(1, nbytes // 100)
            predict_tasks.append(TaskSpec(
                key=(f"predict-{token_p}", i),
                deps=(tkey, model_key), compute_time=0.08,
                output_nbytes=out,
                writes=(IOOp(self.predictions_path, "write",
                             pred_offset, out),),
            ))
            pred_offset += out
        score = TaskSpec(
            key=f"score-{token_p}",
            deps=tuple(t.key for t in predict_tasks),
            compute_time=0.05, output_nbytes=64,
        )
        graph_p = TaskGraph(predict_tasks + [score], name="predict")
        yield env.process(client.compute(graph_p, optimize=False))

        # Drop everything still pinned.
        client.release(list(train_keys) + list(test_keys) + [model_key])

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "name": self.name, "scale": self.scale,
            "dataset": "NYC TLC HV-FHV parquet 2019-2024 "
                       "(synthetic stand-in)",
            "n_files": self.n_files,
            "total_bytes": self.total_bytes,
            "partitions_per_file": self.PARTITIONS_PER_FILE,
            "boosting_rounds": self.rounds,
            "task_graphs": 3 + self.rounds + 1,
        }
