"""The ImageProcessing pipeline workflow (§IV-B).

"This workflow consists of a four-step pipeline: normalization,
grayscale, Gaussian filter, and segmentation.  In this workflow only
Dask APIs are used (dask.array and dask.image) ... We run one task
graph per step and use the Breast Cancer Semantic Segmentation
dataset."  Table I reports 3 task graphs, 5,440 distinct tasks and 151
distinct files; Fig. 4 shows three read phases, each followed by a
write phase, with phase-2/3 writes of a few kilobytes against 80 MB
originals read as 10-25 four-megabyte operations.

We group the four steps into the paper's three graphs:

1. **normalize** — ``imread`` the originals (4 MiB ops), rechunk, per-
   chunk normalization, write normalized images back (large writes —
   the dark-blue first write phase of Fig. 4).
2. **grayscale + gaussian** — re-read the normalized images (second
   read burst; the previous graph's keys were released when the client
   gathered), per-chunk grayscale, Gaussian filter via ``map_overlap``
   (halo dependencies), write small per-image previews.
3. **segmentation** — re-read the previews (third, light read burst),
   per-chunk segmentation, combine to per-image masks, write masks of
   a few kilobytes, and tree-reduce summary statistics.

Because the three graphs run in sequence, graph boundaries act as
synchronisation barriers that produce the bursty simultaneous-I/O
pattern the paper warns makes this workflow sensitive to storage
performance fluctuations.
"""

from __future__ import annotations

from ..dasklike.array import imread
from .base import Workflow, scaled
from .datasets import bcss_images

__all__ = ["ImageProcessingWorkflow"]

class ImageProcessingWorkflow(Workflow):
    """BCSS four-step pipeline in three task graphs."""

    name = "ImageProcessing"
    paper_runs = 10

    #: Paper-scale knobs, calibrated against Table I (5,440 tasks,
    #: 151 distinct files, ~5.3k I/O ops).
    N_IMAGES = 151
    CHUNKS_PER_IMAGE = 10
    READ_OP_BYTES = 4 * 2**20
    #: Normalized images are stored at this fraction of the original
    #: (downsampled float arrays written back to a consolidated store).
    NORMALIZED_RATIO = 0.42
    #: Preview/mask images are a few kilobytes (the light-blue writes
    #: of Fig. 4's phases 2 and 3).
    PREVIEW_RATIO = 0.003

    #: Consolidated per-stage stores (dask.array-to-zarr style): the
    #: pipeline adds only three files to the dataset's 151, matching
    #: Table I's distinct-file count.
    NORMALIZED_STORE = "/lus/bcss-derived/normalized.zarr"
    PREVIEW_STORE = "/lus/bcss-derived/preview.zarr"
    MASK_STORE = "/lus/bcss-derived/masks.zarr"

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.n_images = scaled(self.N_IMAGES, scale, minimum=4)
        self.inventory: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    def prepare(self, cluster, streams) -> None:
        self.inventory = bcss_images(cluster, streams,
                                     n_images=self.n_images)
        for store in (self.NORMALIZED_STORE, self.PREVIEW_STORE,
                      self.MASK_STORE):
            cluster.pfs.create_file(store, 0, stripe_count=8)

    @staticmethod
    def _cumulative_offsets(sizes):
        offsets, acc = [], 0
        for size in sizes:
            offsets.append(acc)
            acc += size
        return offsets

    # ------------------------------------------------------------------
    def driver(self, env, client, cluster):
        paths = [p for p, _ in self.inventory]
        sizes = [s for _, s in self.inventory]
        chunks = self.CHUNKS_PER_IMAGE
        n = len(paths)

        # -- graph 1: normalization ------------------------------------
        originals = imread(paths, sizes, read_op_nbytes=self.READ_OP_BYTES,
                           name="imread")
        per_chunk = originals.split_blocks("rechunk", chunks)
        normalized = per_chunk.map_blocks("normalize", 0.0018,
                                          output_ratio=self.NORMALIZED_RATIO)
        combined = normalized.combine_blocks("combine-normalized", chunks,
                                             output_ratio=1.0)
        norm_sizes = list(combined.block_nbytes)
        written = combined.save(
            "imwrite-normalized", [self.NORMALIZED_STORE] * n,
            write_op_nbytes=self.READ_OP_BYTES,
            offsets=self._cumulative_offsets(norm_sizes),
        )
        yield env.process(client.compute(written.graph("normalize"),
                                         optimize=True))
        written.mark_computed()

        # -- graph 2: grayscale + gaussian filter -----------------------
        stage2_in = imread(
            [self.NORMALIZED_STORE] * n, norm_sizes,
            read_op_nbytes=self.READ_OP_BYTES, name="imread",
            offsets=self._cumulative_offsets(norm_sizes),
        )
        per_chunk2 = stage2_in.split_blocks("rechunk", chunks)
        gray = per_chunk2.map_blocks("grayscale", 0.0014, output_ratio=1 / 3)
        blurred = gray.map_overlap("gaussian_filter", 0.0018, depth=1)
        previews = blurred.combine_blocks("combine-preview", chunks,
                                          output_ratio=self.PREVIEW_RATIO)
        preview_sizes = list(previews.block_nbytes)
        written2 = previews.save(
            "imwrite-preview", [self.PREVIEW_STORE] * n,
            write_op_nbytes=self.READ_OP_BYTES,
            offsets=self._cumulative_offsets(preview_sizes),
        )
        yield env.process(client.compute(
            written2.graph("grayscale-gaussian"), optimize=True))
        written2.mark_computed()

        # -- graph 3: segmentation ---------------------------------------
        stage3_in = imread(
            [self.PREVIEW_STORE] * n, preview_sizes,
            read_op_nbytes=self.READ_OP_BYTES, name="imread",
            offsets=self._cumulative_offsets(preview_sizes),
        )
        segmented = stage3_in.map_blocks("segmentation", 0.0025,
                                         output_ratio=1.0)
        masks = segmented.save(
            "imwrite-mask", [self.MASK_STORE] * n,
            write_op_nbytes=self.READ_OP_BYTES,
            offsets=self._cumulative_offsets(segmented.block_nbytes),
        )
        stats = masks.tree_reduce("segment-stats", fanin=8)
        yield env.process(client.compute(stats.graph("segmentation"),
                                         optimize=True))
        stats.mark_computed()

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "name": self.name, "scale": self.scale,
            "dataset": "BCSS (synthetic stand-in)",
            "n_images": self.n_images,
            "chunks_per_image": self.CHUNKS_PER_IMAGE,
            "steps": ["normalization", "grayscale", "gaussian_filter",
                      "segmentation"],
            "task_graphs": 3,
        }
