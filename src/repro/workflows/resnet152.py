"""The fine-tuned ResNet152 batch-prediction workflow (§IV-B).

"We have fine-tuned the pretrained Pytorch ResNet152 image
classification model on the supervised part of the Imagewang [dataset]
... In this workflow we have three main functions decorated with
``@dask.delayed`` to create tasks: load, transform, and predict."

Table I reports a single task graph, 8,645 distinct tasks and 3,929
distinct files, with the I/O operation count (2,057-2,302) *truncated*
by default Darshan instrumentation buffer limits (footnote 9).  The
shape here matches: one ``load`` task per image file (one small read
each), one ``transform`` per image, and one ``predict`` per batch that
also consumes the broadcast model weights — 3,929 + 3,929 + ceil(3929/5)
+ 1 ≈ 8,645 tasks in one graph.  The model-weights task reads the
~230 MB checkpoint once; predict tasks pull the weights (and their
batch's transformed tensors) over the network, producing the heavy
communication counts of Table I.

At paper scale the per-process DXT buffers overflow exactly as in the
paper; :attr:`ResNet152Workflow.dxt_buffer_limit` exposes the knob the
A2 ablation sweeps.
"""

from __future__ import annotations

from ..dasklike import IOOp, collect, delayed
from .base import Workflow, scaled
from .datasets import imagewang_files

__all__ = ["ResNet152Workflow"]


class ResNet152Workflow(Workflow):
    """Imagewang batch prediction with delayed load/transform/predict."""

    name = "ResNet152"
    paper_runs = 10

    #: Paper-scale knobs.
    N_FILES = 3929
    BATCH_SIZE = 5
    MODEL_BYTES = 230 * 2**20  # ResNet152 checkpoint, ~60M params fp32
    #: Per-process DXT budget that reproduces the footnote-9 truncation
    #: at paper scale (observed ops land in the ~2.1-2.3k band).
    dxt_buffer_limit = 280

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.n_files = scaled(self.N_FILES, scale, minimum=16)
        self.inventory: list[tuple[str, int]] = []
        self.model_path = "/lus/models/resnet152-imagewang-ft.pt"

    # ------------------------------------------------------------------
    def prepare(self, cluster, streams) -> None:
        self.inventory = imagewang_files(cluster, streams,
                                         n_files=self.n_files)
        cluster.pfs.create_file(self.model_path, self.MODEL_BYTES,
                                stripe_count=8)

    # ------------------------------------------------------------------
    def driver(self, env, client, cluster):
        # The model-weights task: one big striped read, broadcast to
        # every predict task through distributed memory.
        load_model = delayed(
            "load_model",
            compute_time=0.8,
            reads=tuple(
                IOOp(self.model_path, "read", off, 16 * 2**20)
                for off in range(0, self.MODEL_BYTES, 16 * 2**20)
            ),
            output_nbytes=self.MODEL_BYTES,
        )

        transforms = []
        for i, (path, size) in enumerate(self.inventory):
            load = delayed(
                "load", index=i,
                compute_time=1e-3,
                reads=(IOOp(path, "read", 0, size),),
                output_nbytes=size,
            )
            transforms.append(delayed(
                "transform", index=i,
                compute_time=2e-3,  # resize + tensor transform
                deps=(load,),
                # 224x224x3 float32 tensor regardless of input size.
                output_nbytes=224 * 224 * 3 * 4,
            ))

        # Batches are assembled the way a shuffling DataLoader samples
        # them — a seeded permutation of the (class-sorted) file list —
        # so a batch's tensors rarely all live on one worker and each
        # predict task gathers most of its inputs over the network,
        # reproducing Table I's heavy communication counts.  The
        # permutation comes from a run-independent stream: the same
        # "shuffle" every repetition, like a fixed DataLoader seed.
        import numpy as _np

        from ..sim.random import stable_seed
        order = _np.random.default_rng(
            stable_seed("resnet152.batch.shuffle", self.n_files)
        ).permutation(len(transforms))
        shuffled = [transforms[i] for i in order]
        n_batches = -(-len(shuffled) // self.BATCH_SIZE)
        predictions = []
        for b in range(n_batches):
            members = shuffled[b * self.BATCH_SIZE:(b + 1) * self.BATCH_SIZE]
            predictions.append(delayed(
                "predict", index=b,
                compute_time=1e-2,  # GPU inference for one batch
                deps=tuple(members) + (load_model,),
                output_nbytes=len(members) * 20 * 4,  # logits, 20 classes
            ))

        graph = collect(predictions, name="resnet152-batch-prediction")
        # A single task graph, submitted once (Table I: Task graphs = 1).
        yield env.process(client.compute(graph, optimize=False))

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "name": self.name, "scale": self.scale,
            "dataset": "Imagewang supervised subset (synthetic stand-in)",
            "n_files": self.n_files,
            "batch_size": self.BATCH_SIZE,
            "model_bytes": self.MODEL_BYTES,
            "task_graphs": 1,
            "dxt_buffer_limit": self.dxt_buffer_limit,
        }
