"""Experiment runner: repeated, fully instrumented workflow executions.

One :func:`run_workflow` call is one "job" in the paper's methodology:
a fresh simulated platform, a batch allocation, the instrumented WMS
stack, the workflow driver, and finally draining the instrumentation.
:func:`run_many` repeats it ``n_runs`` times with the *same* root seed
but distinct run indices — identical code and configuration, different
noise and placement, exactly the repetition protocol behind the
paper's variability analysis (10 runs for ImageProcessing and
ResNet152, 50 for XGBOOST "because it showed more variability").

Results come back as in-memory :class:`~repro.core.RunData` (fast
path) and can optionally be persisted to run directories for the
postprocessing path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..core import RunData
from ..dasklike import DaskConfig
from ..instrument import InstrumentedRun
from ..jobs import BatchSystem, JobSpec
from ..platform import Cluster, ClusterSpec
from ..sim import Environment, RandomStreams
from .base import Workflow

__all__ = ["run_workflow", "run_many", "RunResult"]


@dataclass
class RunResult:
    """Everything one repetition produced."""

    data: RunData
    run_index: int
    wall_time: float
    run_dir: Optional[str] = None
    #: The run's :class:`~repro.telemetry.Telemetry` bundle, if one was
    #: passed to :func:`run_workflow` (``None`` otherwise).
    telemetry: Optional[object] = None


def run_workflow(workflow: Workflow, seed: int = 0, run_index: int = 0,
                 config: Optional[DaskConfig] = None,
                 cluster_spec: Optional[ClusterSpec] = None,
                 job_spec: Optional[JobSpec] = None,
                 dxt_buffer_limit: Optional[int] = None,
                 persist_dir: Optional[str] = None,
                 monitor=None,
                 telemetry=None,
                 **instrument_kwargs) -> RunResult:
    """Execute one instrumented repetition of ``workflow``.

    ``monitor`` is an optional engine observer (e.g. the event-ordering
    sanitizer from :mod:`repro.analysis`) attached to the environment
    for the whole run — the mechanism behind ``perfrecup sanitize``.

    ``telemetry`` is an optional :class:`~repro.telemetry.Telemetry`
    bundle; when given, the instrumentation stack attaches its periodic
    samplers and span-building plugins (``perfrecup trace`` /
    ``perfrecup metrics``).  Monitors compose: sanitizer and telemetry
    can observe the same run.
    """
    env = Environment()
    if monitor is not None:
        monitor.attach(env)
    streams = RandomStreams(seed, run_index=run_index)
    cluster = Cluster(env, cluster_spec or ClusterSpec(), streams)
    batch = BatchSystem(env, cluster, streams)
    spec = job_spec or JobSpec.paper_default(name=workflow.name)
    job = env.run(until=env.process(batch.submit(spec)))

    if config is None and hasattr(workflow, "recommended_config"):
        config = workflow.recommended_config()
    if dxt_buffer_limit is None:
        dxt_buffer_limit = getattr(workflow, "dxt_buffer_limit", None)
    kwargs = dict(instrument_kwargs)
    if dxt_buffer_limit is not None:
        kwargs["dxt_buffer_limit"] = dxt_buffer_limit

    run = InstrumentedRun(env, cluster, job, config=config,
                          streams=streams, run_index=run_index,
                          seed=seed, telemetry=telemetry, **kwargs)
    run.start()
    workflow.prepare(cluster, streams)
    client = run.client(name=f"client-{workflow.name}")

    def main():
        yield env.process(client.connect())
        yield env.process(workflow.driver(env, client, cluster))
        yield env.process(run.drain())

    env.run(until=env.process(main()))
    batch.complete(job)

    run_dir = None
    if persist_dir is not None:
        run_dir = os.path.join(
            persist_dir, workflow.name.lower(), f"run{run_index:04d}")
        run.persist(run_dir, client=client, workflow=workflow.describe())

    data = RunData.from_live(run, client)
    return RunResult(data=data, run_index=run_index,
                     wall_time=data.wall_time, run_dir=run_dir,
                     telemetry=telemetry)


def run_many(workflow_factory, n_runs: int, seed: int = 0,
             workers: Optional[int] = None, **kwargs) -> list[RunResult]:
    """Repeat a workflow ``n_runs`` times (fresh workflow per run).

    Repetitions are independent (each gets its own environment,
    cluster, and ``RandomStreams(seed, run_index)``), so with
    ``workers > 1`` they fan out over a ``concurrent.futures`` thread
    pool.  Results always come back ordered by ``run_index`` with
    bit-identical event streams either way — parallelism changes wall
    time, never the data.
    """
    def one_repetition(run_index: int) -> RunResult:
        workflow = workflow_factory()
        return run_workflow(workflow, seed=seed, run_index=run_index,
                            **kwargs)

    if workers is not None and workers > 1 and n_runs > 1:
        from concurrent.futures import ThreadPoolExecutor
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(one_repetition, range(n_runs)))
    return [one_repetition(run_index) for run_index in range(n_runs)]
