"""Experiment runner: repeated, fully instrumented workflow executions.

One :func:`run_workflow` call is one "job" in the paper's methodology:
a fresh simulated platform, a batch allocation, the instrumented WMS
stack, the workflow driver, and finally draining the instrumentation.
:func:`run_many` repeats it ``n_runs`` times with the *same* root seed
but distinct run indices — identical code and configuration, different
noise and placement, exactly the repetition protocol behind the
paper's variability analysis (10 runs for ImageProcessing and
ResNet152, 50 for XGBOOST "because it showed more variability").

Results come back as in-memory :class:`~repro.core.RunData` (fast
path) and can optionally be persisted to run directories for the
postprocessing path.
"""

from __future__ import annotations

import os
import pickle
import warnings
from dataclasses import dataclass, field
from typing import Optional

from ..core import RunData
from ..dasklike import DaskConfig
from ..instrument import InstrumentedRun
from ..jobs import BatchSystem, JobSpec
from ..platform import Cluster, ClusterSpec
from ..sim import Environment, RandomStreams
from .base import Workflow

__all__ = ["run_workflow", "run_many", "run_many_iter",
           "RunResult", "EXECUTORS"]

#: Valid ``run_many(executor=)`` values.
EXECUTORS = ("serial", "thread", "process", "auto")


@dataclass
class RunResult:
    """Everything one repetition produced."""

    data: RunData
    run_index: int
    wall_time: float
    run_dir: Optional[str] = None
    #: The run's :class:`~repro.telemetry.Telemetry` bundle, if one was
    #: passed to :func:`run_workflow` (``None`` otherwise).
    telemetry: Optional[object] = None
    #: Flat records of every fault the injector fired (empty when the
    #: run had no ``faults=`` schedule).  Plain dicts, so results stay
    #: picklable across the ``run_many`` process pool.
    fault_records: list = field(default_factory=list)


def run_workflow(workflow: Workflow, seed: int = 0, run_index: int = 0,
                 config: Optional[DaskConfig] = None,
                 cluster_spec: Optional[ClusterSpec] = None,
                 job_spec: Optional[JobSpec] = None,
                 dxt_buffer_limit: Optional[int] = None,
                 persist_dir: Optional[str] = None,
                 monitor=None,
                 telemetry=None,
                 faults=None,
                 **instrument_kwargs) -> RunResult:
    """Execute one instrumented repetition of ``workflow``.

    ``monitor`` is an optional engine observer (e.g. the event-ordering
    sanitizer from :mod:`repro.analysis`) attached to the environment
    for the whole run — the mechanism behind ``perfrecup sanitize``.

    ``telemetry`` is an optional :class:`~repro.telemetry.Telemetry`
    bundle; when given, the instrumentation stack attaches its periodic
    samplers and span-building plugins (``perfrecup trace`` /
    ``perfrecup metrics``).  Monitors compose: sanitizer and telemetry
    can observe the same run.

    ``faults`` is an optional :class:`~repro.faults.FaultSchedule` (or
    iterable of :class:`~repro.faults.FaultSpec`); when given, a
    :class:`~repro.faults.FaultInjector` replays it against the run and
    the fired faults come back in ``RunResult.fault_records``.  An
    empty schedule attaches nothing and leaves the event stream
    byte-identical to a run without ``faults``.
    """
    env = Environment()
    if monitor is not None:
        monitor.attach(env)
    streams = RandomStreams(seed, run_index=run_index)
    cluster = Cluster(env, cluster_spec or ClusterSpec(), streams)
    batch = BatchSystem(env, cluster, streams)
    spec = job_spec or JobSpec.paper_default(name=workflow.name)
    job = env.run(until=env.process(batch.submit(spec)))

    if config is None and hasattr(workflow, "recommended_config"):
        config = workflow.recommended_config()
    if dxt_buffer_limit is None:
        dxt_buffer_limit = getattr(workflow, "dxt_buffer_limit", None)
    kwargs = dict(instrument_kwargs)
    if dxt_buffer_limit is not None:
        kwargs["dxt_buffer_limit"] = dxt_buffer_limit

    run = InstrumentedRun(env, cluster, job, config=config,
                          streams=streams, run_index=run_index,
                          seed=seed, telemetry=telemetry, **kwargs)
    run.start()
    injector = None
    if faults is not None:
        from ..faults import FaultInjector
        injector = FaultInjector(faults, streams)
        injector.attach(run)
    workflow.prepare(cluster, streams)
    client = run.client(name=f"client-{workflow.name}")

    def main():
        yield env.process(client.connect())
        yield env.process(workflow.driver(env, client, cluster))
        yield env.process(run.drain())

    env.run(until=env.process(main()))
    batch.complete(job)

    run_dir = None
    if persist_dir is not None:
        run_dir = os.path.join(
            persist_dir, workflow.name.lower(), f"run{run_index:04d}")
        run.persist(run_dir, client=client, workflow=workflow.describe())

    data = RunData.from_live(run, client)
    return RunResult(data=data, run_index=run_index,
                     wall_time=data.wall_time, run_dir=run_dir,
                     telemetry=telemetry,
                     fault_records=injector.records if injector else [])


#: Per-pool-worker state: ``(factory, seed, kwargs)`` unpacked once by
#: :func:`_pool_init`.  Module-global so chunk tasks ship only their run
#: indices — the factory and kwargs cross the process boundary once per
#: pool worker (in the initializer), not once per chunk.
_POOL_STATE: Optional[tuple] = None


def _pool_init(payload: bytes) -> None:
    """Pool-worker initializer: unpack the shared run configuration.

    Takes the pickled ``(factory, seed, kwargs)`` tuple rather than the
    objects themselves so a pickling problem surfaces in the parent
    (where it can fall back to threads) instead of as an opaque pool
    crash.
    """
    global _POOL_STATE
    _POOL_STATE = pickle.loads(payload)


def _run_index_chunk(indices: list[int]) -> list[RunResult]:
    """Worker-process entry: execute one chunk of run indices against
    the pool-wide :data:`_POOL_STATE` configuration."""
    workflow_factory, seed, kwargs = _POOL_STATE
    return [
        run_workflow(workflow_factory(), seed=seed, run_index=run_index,
                     **kwargs)
        for run_index in indices
    ]


def _chunk_indices(n_runs: int, workers: int) -> list[range]:
    """Split ``range(n_runs)`` into at most ``workers`` even chunks."""
    n_chunks = min(workers, n_runs)
    base, extra = divmod(n_runs, n_chunks)
    chunks: list[range] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _adaptive_chunk_count(n_runs: int, workers: int) -> int:
    """How many chunks to cut ``n_runs`` repetitions into.

    One chunk per worker minimizes dispatch overhead but strands the
    pool behind its slowest chunk (repetition wall time varies run to
    run — that variability is the paper's subject).  With enough runs
    per worker, oversubscribe ~4 chunks per worker so the pool can
    rebalance; with few runs, fall back to one chunk per repetition so
    every core gets work immediately.
    """
    if n_runs <= workers * 4:
        return min(n_runs, workers * 4)
    return workers * 4


def _process_pool_viable(workflow_factory, kwargs: dict) -> Optional[str]:
    """Why the process backend cannot run, or ``None`` if it can.

    Three requirements: no per-run live objects the parent needs back
    (``monitor``/``telemetry`` attach to the child's environment and
    their observations would be lost), a ``fork`` start method (children
    must inherit the parent's hash randomization so set-iteration
    order — and therefore the event stream — is identical across
    executors), and picklable factory/kwargs.
    """
    if kwargs.get("monitor") is not None or \
            kwargs.get("telemetry") is not None:
        return "monitor/telemetry observers cannot cross processes"
    import multiprocessing
    if "fork" not in multiprocessing.get_all_start_methods():
        return "requires the fork start method for identical streams"
    try:
        pickle.dumps((workflow_factory, kwargs))
    except Exception as exc:  # pickle raises a zoo of types
        return f"factory/kwargs not picklable ({exc!r})"
    return None


def run_many(workflow_factory, n_runs: int, seed: int = 0,
             workers: Optional[int] = None, executor: str = "auto",
             **kwargs) -> list[RunResult]:
    """Repeat a workflow ``n_runs`` times (fresh workflow per run).

    Repetitions are independent — each gets its own environment,
    cluster, and ``RandomStreams(seed, run_index)`` — so with
    ``workers > 1`` they fan out over a ``concurrent.futures`` pool.
    Results always come back ordered by ``run_index`` with
    bit-identical event streams whatever the executor; parallelism may
    change wall time, never the data.

    ``executor`` selects the backend:

    * ``"process"`` — a ``ProcessPoolExecutor`` (fork context).  The
      factory/seed/kwargs ship once per pool worker via the pool
      initializer; chunks of contiguous run indices (adaptively sized,
      see :func:`_adaptive_chunk_count`) then carry only their
      indices.  The only backend that buys wall-time speedup on
      multi-core machines: repetitions are pure-Python, so threads
      serialize on the GIL.
    * ``"thread"`` — a ``ThreadPoolExecutor``.  Overlaps repetitions
      but does **not** reduce wall time for this CPU-bound workload;
      useful mainly when callers block on other I/O.
    * ``"serial"`` — in-order execution on the calling thread.
    * ``"auto"`` (default) — ``"process"`` when viable (picklable
      factory/kwargs, fork available, no cross-process observers),
      ``"thread"`` otherwise.

    When ``"process"`` is requested but not viable the call falls back
    to threads (and ultimately to serial) with a ``RuntimeWarning``
    rather than failing — see :func:`_process_pool_viable`.
    """
    results = list(run_many_iter(workflow_factory, n_runs, seed=seed,
                                 workers=workers, executor=executor,
                                 _warn_stacklevel=3, **kwargs))
    results.sort(key=lambda result: result.run_index)
    return results


def run_many_iter(workflow_factory, n_runs: int, seed: int = 0,
                  workers: Optional[int] = None, executor: str = "auto",
                  _warn_stacklevel: int = 2, **kwargs):
    """Streaming :func:`run_many`: yield results as they complete.

    Chunks of repetitions stream back incrementally — the first results
    arrive while the slowest chunk is still running, so consumers can
    aggregate, persist, or abort early instead of blocking on the whole
    batch.  Yield order is completion order (contiguous within a
    chunk); :func:`run_many` sorts by ``run_index`` for callers that
    want the batch semantics.  Executor selection, fallback, and
    per-repetition results are identical to :func:`run_many`.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS}, got {executor!r}")

    def one_repetition(run_index: int) -> RunResult:
        workflow = workflow_factory()
        return run_workflow(workflow, seed=seed, run_index=run_index,
                            **kwargs)

    if executor == "serial" or workers is None or workers <= 1 \
            or n_runs <= 1:
        for run_index in range(n_runs):
            yield one_repetition(run_index)
        return

    if executor in ("process", "auto"):
        blocker = _process_pool_viable(workflow_factory, kwargs)
        if blocker is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor, \
                as_completed
            chunks = _chunk_indices(
                n_runs, _adaptive_chunk_count(n_runs, workers))
            # Factory/seed/kwargs ship once per pool worker via the
            # initializer; each chunk task carries only its indices.
            payload = pickle.dumps((workflow_factory, seed, kwargs))
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(chunks)),
                    mp_context=multiprocessing.get_context("fork"),
                    initializer=_pool_init,
                    initargs=(payload,),
            ) as pool:
                futures = [pool.submit(_run_index_chunk, list(chunk))
                           for chunk in chunks]
                for future in as_completed(futures):
                    yield from future.result()
            return
        if executor == "process":
            warnings.warn(
                f"run_many: process executor unavailable ({blocker}); "
                f"falling back to threads", RuntimeWarning,
                stacklevel=_warn_stacklevel)

    from concurrent.futures import ThreadPoolExecutor, as_completed
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(one_repetition, run_index)
                   for run_index in range(n_runs)]
        for future in as_completed(futures):
            yield future.result()
