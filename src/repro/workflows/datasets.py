"""Synthetic dataset generators standing in for the paper's datasets.

The paper's three workflows consume datasets we cannot ship (and that a
simulator cannot pixel-read anyway), so each generator reproduces the
properties the instrumentation actually observes — file counts, size
distributions, and access granularity:

* **BCSS** (Breast Cancer Semantic Segmentation [23]): 151 large
  whole-slide crops.  The paper reads them as "10-25 read operations of
  4 MB each ... per image", i.e. images of roughly 40-100 MB.
* **Imagewang** (ResNet152 fine-tuning/prediction input): thousands of
  small JPEG-scale files — Table I reports 3,929 distinct files.
* **NYC TLC High-Volume FHV parquet**: 61 parquet files, about 20 GiB
  on disk, whose decoded partitions exceed Dask's 128 MB guidance.

Every generator registers its files on the simulated PFS and returns
the (path, size) inventory the workflow builders consume.  Sizes are
drawn from seeded streams so repetitions see the same dataset.
"""

from __future__ import annotations

from ..platform import Cluster
from ..sim import RandomStreams

__all__ = ["bcss_images", "imagewang_files", "nyc_taxi_parquet"]


def bcss_images(cluster: Cluster, streams: RandomStreams,
                n_images: int = 151,
                min_bytes: int = 40 * 2**20,
                max_bytes: int = 100 * 2**20,
                prefix: str = "/lus/bcss") -> list[tuple[str, int]]:
    """BCSS whole-slide image crops: ``n_images`` files of 40-100 MB."""
    inventory = []
    for i in range(n_images):
        path = f"{prefix}/TCGA-crop-{i:04d}.tif"
        size = int(streams.fixed_stream("bcss.size").integers(min_bytes, max_bytes))
        # Round to 1 MiB so 4 MiB read ops tile the file neatly.
        size = max(2**20, (size // 2**20) * 2**20)
        cluster.pfs.create_file(path, size, stripe_count=4)
        inventory.append((path, size))
    return inventory


def imagewang_files(cluster: Cluster, streams: RandomStreams,
                    n_files: int = 3929,
                    min_bytes: int = 30 * 2**10,
                    max_bytes: int = 350 * 2**10,
                    prefix: str = "/lus/imagewang") -> list[tuple[str, int]]:
    """Imagewang-like image corpus: thousands of small JPEG files."""
    inventory = []
    for i in range(n_files):
        cls = i % 20  # 20 classes, as the paper's subset
        path = f"{prefix}/val/n{cls:08d}/ILSVRC-{i:06d}.JPEG"
        size = int(streams.fixed_stream("imagewang.size").integers(min_bytes, max_bytes))
        cluster.pfs.create_file(path, size, stripe_count=1)
        inventory.append((path, size))
    return inventory


def nyc_taxi_parquet(cluster: Cluster, streams: RandomStreams,
                     n_files: int = 61,
                     total_bytes: int = 20 * 2**30,
                     prefix: str = "/lus/nyc-tlc") -> list[tuple[str, int]]:
    """NYC High-Volume FHV trip records, 2019-2024: 61 parquet files.

    Monthly file sizes vary (ridership seasonality); we draw weights
    around the mean so files span roughly 0.5x-1.5x of it.
    """
    rng = streams.fixed_stream("nyc.size")
    weights = [float(rng.uniform(0.5, 1.5)) for _ in range(n_files)]
    scale = total_bytes / sum(weights)
    inventory = []
    year, month = 2019, 1
    for i in range(n_files):
        path = (f"{prefix}/fhvhv_tripdata_{year:04d}-{month:02d}.parquet")
        size = max(2**20, int(weights[i] * scale))
        cluster.pfs.create_file(path, size, stripe_count=4)
        inventory.append((path, size))
        month += 1
        if month > 12:
            month = 1
            year += 1
    return inventory
