"""Workflow protocol shared by the three evaluation workloads.

A workflow owns three things: dataset preparation on the simulated
PFS, a *driver* (a simulation process that builds task graphs and
submits them through a client, one ``compute`` per task graph — the
paper's per-workflow "task graphs" count), and a description used as
application-layer provenance.

``scale`` shrinks dataset/task counts proportionally so the test suite
and default benchmarks run in seconds; ``scale=1.0`` is paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dasklike import Client
from ..platform import Cluster
from ..sim import Environment, RandomStreams

__all__ = ["Workflow", "scaled"]


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an integer knob, never below ``minimum``."""
    return max(minimum, int(round(value * scale)))


class Workflow:
    """Base class; subclasses implement prepare/driver/describe."""

    #: Human name, used in run directories and reports.
    name: str = "workflow"
    #: Repetitions used in the paper's evaluation for this workflow.
    paper_runs: int = 10

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    # -- hooks ------------------------------------------------------------
    def prepare(self, cluster: Cluster, streams: RandomStreams) -> None:
        """Create input files on the PFS (called once per run)."""
        raise NotImplementedError

    def driver(self, env: Environment, client: Client, cluster: Cluster):
        """Simulation process: build and compute the task graphs."""
        raise NotImplementedError

    def describe(self) -> dict:
        return {"name": self.name, "scale": self.scale}
