"""Command-line interface: run workflows, analyze persisted runs.

Usage::

    perfrecup run imageprocessing --runs 3 --scale 0.1 --out ./results
    perfrecup analyze ./results/imageprocessing/run0000
    perfrecup compare ./results/xgboost --workers 4
    perfrecup provenance ./results/xgboost/run0000 --key <task-key>
    perfrecup list-workflows

Every analysis subcommand (``analyze``/``compare``/``figures``/``zoom``/
``report``) shares the same option set: ``--out`` (output file or
directory), ``--format text|json``, and ``--workers N`` (thread fan-out
for view building and multi-run loading).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .core import (
    AnalysisSession,
    comm_scatter,
    comm_summary,
    fig4_svg,
    fig5_svg,
    fig6_svg,
    fig7_svg,
    format_records,
    io_timeline,
    longest_categories,
    parallel_coordinates,
    phase_breakdown,
    render_provenance,
    task_provenance,
    warning_histogram,
    write_svg,
)

WORKFLOWS = {
    "imageprocessing": "ImageProcessingWorkflow",
    "resnet152": "ResNet152Workflow",
    "xgboost": "XGBoostWorkflow",
}


def _workflow_factory(name: str, scale: float):
    import functools

    from . import workflows as wf_module
    try:
        cls = getattr(wf_module, WORKFLOWS[name.lower()])
    except KeyError:
        raise SystemExit(
            f"unknown workflow {name!r}; choose from {sorted(WORKFLOWS)}"
        )
    # partial, not a lambda: the factory must pickle for the process
    # executor of ``run_many``.
    return functools.partial(cls, scale=scale)


def _deliver(args: argparse.Namespace, text: str, document) -> int:
    """Common output contract of the analysis subcommands.

    ``--format json`` serialises ``document`` instead of ``text``;
    ``--out FILE`` writes the payload there (printing the path) instead
    of stdout.
    """
    if getattr(args, "format", "text") == "json":
        payload = json.dumps(document, indent=2, default=str)
    else:
        payload = text
    out = getattr(args, "out", None)
    if out:
        os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(out)
    else:
        print(payload)
    return 0


def _session_of_dir(args: argparse.Namespace) -> AnalysisSession:
    """Load one run directory; ``--workers`` prefetches views."""
    session = AnalysisSession.of(args.run_dir)
    workers = getattr(args, "workers", None)
    if workers is not None and workers > 1:
        session.prefetch(workers=workers)
    return session


def cmd_run(args: argparse.Namespace) -> int:
    from .workflows import run_many
    factory = _workflow_factory(args.workflow, args.scale)
    results = run_many(factory, n_runs=args.runs, seed=args.seed,
                       persist_dir=args.out, workers=args.workers,
                       executor=args.executor)
    rows = []
    for result in results:
        breakdown = phase_breakdown(result.data)
        rows.append({
            "run": result.run_index,
            "wall_s": round(result.wall_time, 2),
            "io_s": round(breakdown.io, 2),
            "comm_s": round(breakdown.communication, 2),
            "compute_s": round(breakdown.computation, 2),
            "dir": result.run_dir or "(in-memory)",
        })
    print(format_records(rows, title=f"{args.workflow}: {args.runs} runs "
                                     f"at scale {args.scale}"))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .core import format_gap_report, metadata_gaps

    session = _session_of_dir(args)
    breakdown = phase_breakdown(session)
    categories = longest_categories(session.task_view(),
                                    top=args.top).to_records()
    summary = comm_summary(session.comm_view())
    hist = warning_histogram(session.warning_view(),
                             bucket=args.bucket).to_records()
    darshan = session.run.darshan.summary()
    gaps = metadata_gaps(session)

    sections = [
        format_records([breakdown.as_dict()], title="Phase breakdown"),
        format_records(categories,
                       title=f"Longest task categories (top {args.top})"),
        format_records(
            [{"locality": k, **v} for k, v in summary.items()
             if isinstance(v, dict)],
            title="Communication summary"),
        format_records(hist,
                       title=f"Warnings per {args.bucket:.0f}s bucket"),
        format_records([darshan], title="Darshan summary"),
        format_gap_report(gaps),
    ]
    document = {
        "run_dir": args.run_dir,
        "phase_breakdown": breakdown.as_dict(),
        "longest_categories": categories,
        "comm_summary": summary,
        "warning_histogram": hist,
        "darshan": darshan,
        "gaps": gaps,
    }
    return _deliver(args, "\n\n".join(sections), document)


def cmd_provenance(args: argparse.Namespace) -> int:
    session = AnalysisSession.of(args.run_dir)
    if args.key is None:
        tasks = session.task_view().sort_by("duration", descending=True)
        key = tasks["key"][0]
        print("(no --key given; showing the longest task)\n")
    else:
        key = args.key
    print(render_provenance(task_provenance(session, key),
                            max_items=args.max_items))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Cross-run variability report over several persisted runs."""
    import glob

    from .core import compare_runs, variability_report

    run_dirs = sorted(
        d for d in glob.glob(os.path.join(args.runs_dir, "run*"))
        if os.path.isdir(d)
    )
    if len(run_dirs) < 2:
        raise SystemExit(
            f"need at least two run directories under {args.runs_dir}")
    report = variability_report(run_dirs, workers=args.workers)
    stats = report["phases"]
    by_prefix = report["by_prefix"].head(args.top).to_records()
    views = [session.task_view() for session in report["sessions"]]
    comparison = compare_runs(views).to_records()

    sections = [
        format_records(
            [stats[p].as_dict()
             for p in ("io", "communication", "computation", "total")],
            title=f"Phase variability over {len(run_dirs)} runs"),
        format_records(by_prefix,
                       title="Task categories by cross-run variability"),
        format_records(
            comparison,
            title="Pairwise scheduling comparison "
                  "(agreement=same placement, distance=order drift)"),
    ]
    document = {
        "runs_dir": args.runs_dir,
        "n_runs": len(run_dirs),
        "phases": {p: stats[p].as_dict()
                   for p in ("io", "communication", "computation",
                             "total")},
        "normalized": stats["normalized"],
        "by_prefix": by_prefix,
        "scheduling_comparison": comparison,
    }
    return _deliver(args, "\n\n".join(sections), document)


def cmd_figures(args: argparse.Namespace) -> int:
    """Render the paper-style SVG figures for one persisted run."""
    session = _session_of_dir(args)
    out = args.out or os.path.join(args.run_dir, "figures")
    written = [
        write_svg(fig4_svg(io_timeline(session.io_view())),
                  os.path.join(out, "per_thread_io.svg")),
        write_svg(fig5_svg(comm_scatter(session.comm_view())),
                  os.path.join(out, "comm_scatter.svg")),
        write_svg(fig6_svg(parallel_coordinates(session.task_view())),
                  os.path.join(out, "parallel_coordinates.svg")),
        write_svg(fig7_svg(warning_histogram(session.warning_view(),
                                             bucket=args.bucket)),
                  os.path.join(out, "warning_distribution.svg")),
    ]
    if args.format == "json":
        print(json.dumps({"written": written}, indent=2))
    else:
        for path in written:
            print(path)
    return 0


def cmd_zoom(args: argparse.Namespace) -> int:
    """Summarize everything inside one time window of a run."""
    from .core import zoom

    session = _session_of_dir(args)
    end = args.end if args.end is not None else session.wall_time
    window = zoom(session, args.start, end)
    lines = [format_records([{
        k: v for k, v in window.stats.items()
        if k not in ("window", "prefixes_active")
    }], title=f"Window [{args.start:.1f}s, {end:.1f}s)")]
    lines.append(f"\nactive categories: "
                 f"{', '.join(window.stats['prefixes_active']) or '(none)'}")
    if len(window.warnings):
        lines.append(f"warnings in window: {len(window.warnings)}")
    return _deliver(args, "\n".join(lines), window.stats)


def cmd_report(args: argparse.Namespace) -> int:
    """Write a standalone HTML report for one persisted run."""
    from .core import write_html_report

    session = _session_of_dir(args)
    out = args.out or os.path.join(args.run_dir, "report.html")
    path = write_html_report(session, out,
                             title=f"PERFRECUP report: {args.run_dir}")
    if args.format == "json":
        print(json.dumps({"written": [path]}, indent=2))
    else:
        print(path)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Static determinism + provenance-schema analysis over the tree."""
    import os

    from .analysis import (
        EXIT_ERROR,
        LintEngine,
        load_baseline,
        prune_baseline,
        rules_for,
        write_baseline,
    )

    paths = args.paths
    if not paths:
        # Default target: the installed repro package itself.
        paths = [os.path.dirname(os.path.abspath(__file__))]
    root = os.path.commonpath([os.path.abspath(p) for p in paths])
    if os.path.isfile(root):
        root = os.path.dirname(root)

    selectors = None
    if args.rules:
        selectors = [token.strip() for token in args.rules.split(",")
                     if token.strip()]
    try:
        rules = rules_for(selectors)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return EXIT_ERROR

    baseline = set()
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_baseline(args.baseline)

    engine = LintEngine(rules=rules, baseline=baseline, root=root)
    try:
        report = engine.run(paths, jobs=args.jobs)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"lint failed: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.write_baseline:
        count = write_baseline(report, args.write_baseline, root)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {args.write_baseline}")
        return 0

    if args.prune_baseline:
        if not args.baseline:
            print("--prune-baseline requires --baseline", file=sys.stderr)
            return EXIT_ERROR
        kept, dropped = prune_baseline(report, args.baseline, root)
        print(f"pruned baseline {args.baseline}: kept {kept}, "
              f"dropped {dropped} stale entr{'y' if dropped == 1 else 'ies'}")
        return 0

    stale = report.stats.get("stale_baseline_entries", 0)
    if stale:
        print(f"warning: {stale} baseline entr"
              f"{'y matches' if stale == 1 else 'ies match'} no finding "
              f"in {args.baseline}; run with --prune-baseline",
              file=sys.stderr)

    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text(verbose=args.verbose))
    return report.exit_code


def cmd_sanitize(args: argparse.Namespace) -> int:
    """Run one workflow under the runtime event-ordering sanitizer."""
    from .analysis import EventOrderSanitizer
    from .workflows import run_workflow

    factory = _workflow_factory(args.workflow, args.scale)
    sanitizer = EventOrderSanitizer()
    run_workflow(factory(), seed=args.seed, monitor=sanitizer)
    report = sanitizer.report()
    _deliver(args, report.render_text(),
             json.loads(report.render_json()))
    return report.exit_code


def cmd_faults(args: argparse.Namespace) -> int:
    """Run one workflow under a fault schedule; print the recovery story."""
    from .faults import FaultSchedule
    from .workflows import run_workflow

    factory = _workflow_factory(args.workflow, args.scale)
    try:
        schedule = FaultSchedule.from_specs(args.fault or [])
    except ValueError as exc:
        print(f"bad --fault spec: {exc}", file=sys.stderr)
        return 2
    result = run_workflow(factory(), seed=args.seed, faults=schedule)
    session = AnalysisSession.of(result.data)
    report = session.resilience_report()

    document = {
        "workflow": args.workflow,
        "seed": args.seed,
        "schedule": schedule.describe(),
        "wall_time_s": round(result.wall_time, 3),
        **{key: report[key] for key in (
            "n_faults", "faults", "recomputed_tasks", "retried_tasks",
            "total_retries", "retry_histogram", "recovery",
            "fault_warnings")},
    }
    lines = [
        f"{args.workflow}: {report['n_faults']} fault(s) fired, "
        f"wall time {result.wall_time:.2f}s",
        f"recomputed tasks: {report['recomputed_tasks']}  "
        f"retried tasks: {report['retried_tasks']} "
        f"({report['total_retries']} retries)",
    ]
    rows = [{
        "fault": f"{entry['kind']}@{entry['time']:.1f}",
        "target": entry["target"],
        "detected_s": "-" if entry["detected_after"] is None
        else f"{entry['detected_after']:.2f}",
        "recovered_s": "-" if entry["recovered_after"] is None
        else f"{entry['recovered_after']:.2f}",
        "warnings": window["n_warnings"],
    } for entry, window in zip(report["recovery"],
                               report["fault_warnings"])]
    if rows:
        lines.append(format_records(rows, title="recovery per fault"))
    return _deliver(args, "\n".join(lines), document)


def _run_with_telemetry(args: argparse.Namespace):
    """Shared driver of ``trace``/``metrics``: one instrumented run."""
    from .telemetry import Telemetry
    from .workflows import run_workflow

    factory = _workflow_factory(args.workflow, args.scale)
    telemetry = Telemetry(interval=args.interval,
                          run_name=args.workflow, seed=args.seed)
    run_workflow(factory(), seed=args.seed, telemetry=telemetry)
    return telemetry


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one workflow and emit its span trace as Chrome trace JSON."""
    telemetry = _run_with_telemetry(args)
    document = telemetry.chrome_trace()
    text = (f"{args.workflow}: {len(document['traceEvents'])} trace "
            f"events (use --format json, or --out, for the Chrome "
            f"trace itself)")
    return _deliver(args, text, document)


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run one workflow and dump its sampled telemetry series."""
    telemetry = _run_with_telemetry(args)
    records = telemetry.metrics_records()

    summary: dict[str, dict] = {}
    for row in records:
        entry = summary.setdefault(row["metric"], {
            "metric": row["metric"], "kind": row["kind"],
            "series": set(), "rows": 0, "last": 0.0,
        })
        entry["series"].add(row["labels"])
        entry["rows"] += 1
        entry["last"] = row["value"]
    rows = [{**summary[name], "series": len(summary[name]["series"])}
            for name in sorted(summary)]
    text = format_records(
        rows, title=f"{args.workflow}: {len(records)} sampled rows, "
                    f"{len(rows)} metrics")
    return _deliver(args, text, records)


def _open_catalog_from_args(args: argparse.Namespace):
    from .lake import Catalog
    knobs = {}
    if getattr(args, "cache_sessions", None) is not None:
        knobs["max_sessions"] = args.cache_sessions
    if getattr(args, "cache_events", None) is not None:
        knobs["max_cached_events"] = args.cache_events
    if getattr(args, "wall_bucket", None) is not None:
        knobs["wall_bucket_s"] = args.wall_bucket
    return Catalog.open(args.catalog_root, **knobs)


def cmd_ingest(args: argparse.Namespace) -> int:
    """Register new run directories into a catalog (incremental)."""
    catalog = _open_catalog_from_args(args)
    entries = []
    for runs_dir in args.runs_dirs:
        entries += catalog.ingest(runs_dir, date=args.date,
                                  workers=args.workers)
    rows = [{
        "run_id": e.run_id, "workflow": e.workflow, "date": e.date,
        "wall_s": round(e.wall_time, 2), "n_events": e.n_events,
    } for e in entries]
    text = format_records(
        rows, title=f"ingested {len(entries)} new run(s) into "
                    f"{catalog.root}") if rows else \
        f"ingested 0 new run(s) into {catalog.root} (all up to date)"
    document = {
        "catalog": catalog.root,
        "registered": len(entries),
        "runs": [e.as_dict() for e in entries],
    }
    return _deliver(args, text, document)


def cmd_query(args: argparse.Namespace) -> int:
    """One catalog query, in-process or against a serve daemon.

    ``target`` is either a catalog root directory (query runs
    in-process) or a daemon base URL (``http://host:port``); the
    payload bytes are identical either way.
    """
    from .lake import Catalog, LakeQueryError, http_query

    try:
        if args.target.startswith(("http://", "https://")):
            payload = http_query(args.target, args.query)
        else:
            payload = Catalog.open(args.target).query_json(args.query)
    except LakeQueryError as exc:
        print(f"query failed ({exc.status}): {exc.message}",
              file=sys.stderr)
        return 1
    document = json.loads(payload.decode("utf-8"))

    if args.format == "json" and not args.out:
        # The canonical payload, byte-for-byte (what the daemon sent).
        sys.stdout.write(payload.decode("utf-8"))
        return 0
    if isinstance(document, dict) and "runs" in document \
            and document.get("runs") and \
            isinstance(document["runs"][0], dict):
        rows = [{k: run[k] for k in (
            "run_id", "workflow", "date", "config_hash",
            "fault_signature", "wall_time", "n_tasks")}
            for run in document["runs"]]
        text = format_records(
            rows, title=f"{document['n_runs']} matching run(s)")
    elif isinstance(document, dict) and "by_prefix" in document:
        sections = [format_records(
            [document["phases"][p]
             for p in ("io", "communication", "computation", "total")],
            title=f"Phase variability over {document['n_runs']} runs")]
        sections.append(format_records(
            document["by_prefix"],
            title="Task categories by cross-run variability"))
        text = "\n\n".join(sections)
    else:
        text = json.dumps(document, indent=2, default=str)
    return _deliver(args, text, document)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived analysis daemon over one catalog."""
    from .lake import serve

    catalog = _open_catalog_from_args(args)
    for runs_dir in args.ingest or ():
        catalog.ingest(runs_dir, workers=args.workers)
    server = serve(catalog, host=args.host, port=args.port,
                   verbose=args.verbose)
    n_runs = len(catalog.indexes.run_shards)
    line = (f"serving catalog {catalog.root} ({n_runs} run(s)) "
            f"at {server.address}")
    if args.format == "json":
        line = json.dumps({"address": server.address,
                           "catalog": catalog.root, "n_runs": n_runs})
    if args.out:
        # Just the address: scripts poll this file to find the
        # ephemeral port, so keep it machine-readable.
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(server.address + "\n")
    print(line, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    for name in sorted(WORKFLOWS):
        print(name)
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS
    rows = [{
        "id": e.id, "artifact": e.artifact, "bench": e.bench,
        "workflows": "+".join(e.workflows),
    } for e in EXPERIMENTS]
    print(format_records(rows, title="Experiment registry "
                               "(paper artifact -> bench)"))
    if args.id:
        from .experiments import get_experiment
        experiment = get_experiment(args.id)
        print(f"\n{experiment.id}: {experiment.artifact}")
        for claim in experiment.claims:
            print(f"  - {claim}")
    return 0


def cmd_dataplane(args: argparse.Namespace) -> int:
    """Per-backend proxy traffic and saved-transfer-time attribution."""
    session = _session_of_dir(args)
    report = session.data_plane_report()
    if not report["enabled"]:
        text = ("no proxy events in this run "
                "(data plane disabled or nothing crossed the threshold)")
        return _deliver(args, text, {"run_dir": args.run_dir, **report})

    def _row(name: str, bucket: dict) -> dict:
        return {
            "backend": name,
            "puts": bucket["n_puts"],
            "resolves": bucket["n_resolves"],
            "failed": bucket["n_failed_resolves"],
            "evicts": bucket["n_evictions"],
            "GB_resolved": round(bucket["bytes_resolved"] / 1e9, 3),
            "resolve_s": round(bucket["resolve_s"], 3),
            "baseline_s": round(bucket["baseline_s"], 3),
            "saved_s": round(bucket["saved_s"], 3),
        }

    rows = [_row(name, bucket)
            for name, bucket in sorted(report["by_backend"].items())]
    rows.append(_row("total", report))
    text = format_records(
        rows, title="Data plane: proxy traffic vs. scheduler-path "
                    "estimate")
    if args.keys:
        view = session.data_plane_view()
        text += "\n\n" + format_records(
            view.to_records()[:args.keys],
            title=f"First {args.keys} proxy events")
    return _deliver(args, text, {"run_dir": args.run_dir, **report})


#: Subcommands sharing the full analysis option set (``--out`` /
#: ``--format`` / ``--workers``), asserted consistent by the CLI tests.
ANALYSIS_COMMANDS = ("analyze", "compare", "figures", "zoom", "report",
                     "ingest", "query", "serve", "dataplane")

#: Subcommands sharing the output pair (``--out`` / ``--format``) but
#: not ``--workers`` — single-run drivers with nothing to fan out.
OUTPUT_COMMANDS = ("faults", "metrics", "trace", "sanitize")


def _output_parent(format_default: str = "text") \
        -> argparse.ArgumentParser:
    """The output option pair shared by every reporting subcommand.

    One definition site: no subcommand declares ``--out``/``--format``
    ad hoc, so they parse (and read in help) identically everywhere.
    A subcommand whose product *is* a JSON document (``trace``) asks
    for its own parent instance with ``format_default="json"`` —
    argparse shares action objects between subparsers built from one
    parent, so mutating a shared default would leak to siblings.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--out", default=None,
        help="output destination (file, or directory for figures; "
             "default: stdout / a path under the run directory)")
    parent.add_argument(
        "--format", choices=("text", "json"), default=format_default,
        help="render as human-readable text or JSON "
             f"(default: {format_default})")
    return parent


def _analysis_parent() -> argparse.ArgumentParser:
    """The option set every analysis subcommand shares."""
    parent = _output_parent()
    parent.add_argument(
        "--workers", type=int, default=None,
        help="thread fan-out for view building and multi-run loading")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="perfrecup",
        description="Performance characterization and provenance of "
                    "simulated Dask-like workflows (SC24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _analysis_parent()
    output = _output_parent()

    p_run = sub.add_parser("run", help="run an instrumented workflow")
    p_run.add_argument("workflow", help="imageprocessing|resnet152|xgboost")
    p_run.add_argument("--runs", type=int, default=1)
    p_run.add_argument("--scale", type=float, default=0.1)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--out", default=None,
                       help="persist run directories under this path")
    p_run.add_argument("--workers", type=int, default=None,
                       help="run repetitions concurrently on this many "
                            "workers")
    p_run.add_argument("--executor",
                       choices=("serial", "thread", "process", "auto"),
                       default="auto",
                       help="repetition backend for --workers: process "
                            "pool (real parallelism), thread pool, "
                            "serial, or auto (default: process when "
                            "viable)")
    p_run.set_defaults(func=cmd_run)

    p_an = sub.add_parser("analyze", parents=[common],
                          help="analyze a persisted run")
    p_an.add_argument("run_dir")
    p_an.add_argument("--top", type=int, default=5)
    p_an.add_argument("--bucket", type=float, default=100.0)
    p_an.set_defaults(func=cmd_analyze)

    p_prov = sub.add_parser("provenance",
                            help="print one task's full lineage")
    p_prov.add_argument("run_dir")
    p_prov.add_argument("--key", default=None)
    p_prov.add_argument("--max-items", type=int, default=8)
    p_prov.set_defaults(func=cmd_provenance)

    p_cmp = sub.add_parser("compare", parents=[common],
                           help="variability report across persisted runs")
    p_cmp.add_argument("runs_dir",
                       help="directory containing run0000, run0001, ...")
    p_cmp.add_argument("--top", type=int, default=8)
    p_cmp.set_defaults(func=cmd_compare)

    p_fig = sub.add_parser("figures", parents=[common],
                           help="render SVG figures for a persisted run")
    p_fig.add_argument("run_dir")
    p_fig.add_argument("--bucket", type=float, default=100.0)
    p_fig.set_defaults(func=cmd_figures)

    p_zoom = sub.add_parser("zoom", parents=[common],
                            help="stats for one time window of a run")
    p_zoom.add_argument("run_dir")
    p_zoom.add_argument("--start", type=float, default=0.0)
    p_zoom.add_argument("--end", type=float, default=None)
    p_zoom.set_defaults(func=cmd_zoom)

    p_rep = sub.add_parser("report", parents=[common],
                           help="single-file HTML report for a run")
    p_rep.add_argument("run_dir")
    p_rep.set_defaults(func=cmd_report)

    p_dp = sub.add_parser(
        "dataplane", parents=[common],
        help="proxy (pass-by-reference) traffic report for a run")
    p_dp.add_argument("run_dir")
    p_dp.add_argument("--keys", type=int, default=0,
                      help="also list the first N proxy events")
    p_dp.set_defaults(func=cmd_dataplane)

    p_lint = sub.add_parser(
        "lint",
        help="whole-program static analysis (determinism, provenance, "
             "concurrency, hotpath, provflow)")
    p_lint.add_argument("paths", nargs="*",
                        help="files/directories (default: the repro "
                             "package)")
    p_lint.add_argument("--rules", default=None,
                        help="comma-separated rule or family names "
                             "(determinism, provenance, concurrency, "
                             "hotpath, provflow, det-wallclock, ...)")
    p_lint.add_argument("--format", choices=("text", "json"),
                        default="text")
    p_lint.add_argument("--baseline", default=None,
                        help="JSON baseline of grandfathered findings")
    p_lint.add_argument("--write-baseline", default=None,
                        help="write current findings as the new baseline "
                             "and exit 0")
    p_lint.add_argument("--prune-baseline", action="store_true",
                        help="drop baseline entries that no longer match "
                             "any finding, rewrite the file, and exit 0")
    p_lint.add_argument("--jobs", type=int, default=1,
                        help="read source files with N threads "
                             "(findings stay deterministically ordered)")
    p_lint.add_argument("--verbose", action="store_true",
                        help="also print suppressed/baselined findings")
    p_lint.set_defaults(func=cmd_lint)

    p_san = sub.add_parser(
        "sanitize", parents=[output],
        help="run a workflow under the event-ordering sanitizer")
    p_san.add_argument("workflow",
                       help="imageprocessing|resnet152|xgboost")
    p_san.add_argument("--scale", type=float, default=0.05)
    p_san.add_argument("--seed", type=int, default=0)
    p_san.set_defaults(func=cmd_sanitize)

    p_faults = sub.add_parser(
        "faults", parents=[output],
        help="run a workflow under an injected fault schedule")
    p_faults.add_argument("workflow",
                          help="imageprocessing|resnet152|xgboost")
    p_faults.add_argument("--scale", type=float, default=0.05)
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument(
        "--fault", action="append", metavar="SPEC",
        help="fault spec kind@time[:target][+duration][xMAG] "
             "(repeatable; e.g. worker_crash@5 or "
             "pfs_ost_slowdown@2:0+10x8)")
    p_faults.set_defaults(func=cmd_faults)

    # The Chrome trace is the product: default to the JSON document
    # (open in chrome://tracing or Perfetto).
    p_trace = sub.add_parser(
        "trace", parents=[_output_parent(format_default="json")],
        help="run a workflow and emit a Chrome trace-event JSON")
    p_trace.add_argument("workflow",
                         help="imageprocessing|resnet152|xgboost")
    p_trace.add_argument("--scale", type=float, default=0.05)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--interval", type=float, default=0.5,
                         help="metric sampling interval (sim seconds)")
    p_trace.set_defaults(func=cmd_trace)

    p_met = sub.add_parser(
        "metrics", parents=[output],
        help="run a workflow and dump its sampled telemetry series")
    p_met.add_argument("workflow",
                       help="imageprocessing|resnet152|xgboost")
    p_met.add_argument("--scale", type=float, default=0.05)
    p_met.add_argument("--seed", type=int, default=0)
    p_met.add_argument("--interval", type=float, default=0.5,
                       help="metric sampling interval (sim seconds)")
    p_met.set_defaults(func=cmd_metrics)

    p_ing = sub.add_parser(
        "ingest", parents=[common],
        help="register new runs into a provenance data lake catalog")
    p_ing.add_argument("catalog_root",
                       help="catalog root directory (created on first "
                            "use)")
    p_ing.add_argument("runs_dirs", nargs="+", metavar="runs_dir",
                       help="directories scanned recursively for "
                            "persisted run dirs (provenance.json)")
    p_ing.add_argument("--date", default=None,
                       help="partition label for runs without one "
                            "(default: 'undated')")
    p_ing.set_defaults(func=cmd_ingest)

    p_query = sub.add_parser(
        "query", parents=[common],
        help="query a catalog (in-process) or a serve daemon (HTTP)")
    p_query.add_argument("target",
                         help="catalog root directory, or daemon base "
                              "URL (http://host:port)")
    p_query.add_argument("query",
                         help="route with query string, e.g. "
                              "'/runs?workflow=xgboost' or "
                              "'/reports/variability?workflow=xgboost'")
    p_query.set_defaults(func=cmd_query)

    p_srv = sub.add_parser(
        "serve", parents=[common],
        help="long-lived JSON-over-HTTP daemon over one catalog")
    p_srv.add_argument("catalog_root", help="catalog root directory")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0: ephemeral; the bound "
                            "address is printed at startup)")
    p_srv.add_argument("--ingest", action="append", metavar="RUNS_DIR",
                       help="ingest this directory before serving "
                            "(repeatable)")
    p_srv.add_argument("--cache-sessions", type=int, default=None,
                       help="LRU session-cache entry cap")
    p_srv.add_argument("--cache-events", type=int, default=None,
                       help="LRU session-cache size cap (total cached "
                            "event/log/metric records)")
    p_srv.add_argument("--wall-bucket", type=float, default=None,
                       help="wall-time index bucket width in seconds")
    p_srv.add_argument("--verbose", action="store_true",
                       help="log each request to stderr")
    p_srv.set_defaults(func=cmd_serve)

    p_list = sub.add_parser("list-workflows", help="list workflow names")
    p_list.set_defaults(func=cmd_list)

    p_exp = sub.add_parser("experiments",
                           help="list the paper-artifact registry")
    p_exp.add_argument("--id", default=None,
                       help="show one experiment's claims")
    p_exp.set_defaults(func=cmd_experiments)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
